package eval

import (
	"fmt"
	"sort"
	"strings"

	"pelta/internal/obs"
)

// msPerNS converts span nanosecond fields into the millisecond unit every
// other latency table in the repo reports.
const msPerNS = 1e-6

// TraceStageStats is the latency breakdown of one pipeline stage over the
// served spans of a route.
type TraceStageStats struct {
	Stage string `json:"stage"`
	// P50Ms/P95Ms are exact sorted-slice quantiles of this stage's
	// duration. Because a span's stages partition its end-to-end latency
	// exactly (obs.SpanRecord.Stages), the per-stage means sum to the
	// end-to-end mean, and the stage p50/p95 columns sum close to the
	// end-to-end p50/p95 whenever stage durations are positively
	// correlated — the acceptance bound the trace harness checks.
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	MeanMs float64 `json:"mean_ms"`
	// Share is this stage's fraction of the mean end-to-end latency,
	// in [0,1]; shares sum to 1 exactly.
	Share float64 `json:"share"`
}

// TraceRouteSummary is the per-route view of a span set: the stage
// breakdown over served spans plus the outcome causality counts over all
// spans.
type TraceRouteSummary struct {
	Route string `json:"route"`
	Spans int    `json:"spans"`
	// Served counts spans with outcome "served"; the stage table below is
	// computed over exactly these.
	Served   int                `json:"served"`
	EndToEnd Q                  `json:"end_to_end_ms"`
	MeanMs   float64            `json:"mean_ms"`
	Stages   [5]TraceStageStats `json:"stages"`
	// Outcomes counts every span by its outcome string — the causality
	// table separating queue-full sheds from deadline sheds from detector
	// sheds.
	Outcomes map[string]int `json:"outcomes"`
	// Flagged counts spans whose client was flagged by the probe detector.
	Flagged int `json:"flagged"`
	// MatMulMs/ConvMs/AttnMs are the mean per-request kernel-boundary
	// times attributed by the worker (batch-level, so a request in a batch
	// of k carries the whole batch's kernel time).
	MatMulMs float64 `json:"matmul_ms"`
	ConvMs   float64 `json:"conv_ms"`
	AttnMs   float64 `json:"attn_ms"`
}

// TraceSummary is the per-route × per-stage latency-breakdown and
// shed/flag causality view of a span set.
type TraceSummary struct {
	Spans  int                 `json:"spans"`
	Served int                 `json:"served"`
	Routes []TraceRouteSummary `json:"routes"`
}

// SummarizeTrace condenses span records into per-route stage breakdowns
// and outcome counts. Routes are sorted by name and all statistics use the
// exact sorted-slice quantiles of Quantiles, so the same span set always
// renders byte-identically.
func SummarizeTrace(recs []obs.SpanRecord) *TraceSummary {
	byRoute := map[string][]obs.SpanRecord{}
	for _, r := range recs {
		byRoute[r.Route] = append(byRoute[r.Route], r)
	}
	routes := make([]string, 0, len(byRoute))
	for r := range byRoute {
		routes = append(routes, r)
	}
	sort.Strings(routes)

	s := &TraceSummary{Spans: len(recs)}
	for _, route := range routes {
		spans := byRoute[route]
		rs := TraceRouteSummary{Route: route, Spans: len(spans), Outcomes: map[string]int{}}
		var e2e []float64
		var stageVals [5][]float64
		var meanSum float64
		var stageSum [5]float64
		var kernels [3]float64
		for _, sp := range spans {
			rs.Outcomes[sp.Outcome]++
			if sp.Flagged {
				rs.Flagged++
			}
			if sp.Outcome != obs.OutcomeServed {
				continue
			}
			rs.Served++
			e2e = append(e2e, float64(sp.End())*msPerNS)
			meanSum += float64(sp.End()) * msPerNS
			for i, d := range sp.Stages() {
				v := float64(d) * msPerNS
				stageVals[i] = append(stageVals[i], v)
				stageSum[i] += v
			}
			kernels[0] += float64(sp.MatMulNS) * msPerNS
			kernels[1] += float64(sp.ConvNS) * msPerNS
			kernels[2] += float64(sp.AttnNS) * msPerNS
		}
		if rs.Served > 0 {
			rs.EndToEnd = Quantiles(e2e)
			rs.MeanMs = meanSum / float64(rs.Served)
			for i := range rs.Stages {
				st := TraceStageStats{
					Stage:  obs.StageNames[i],
					P50Ms:  Quantile(stageVals[i], 0.50),
					P95Ms:  Quantile(stageVals[i], 0.95),
					MeanMs: stageSum[i] / float64(rs.Served),
				}
				if meanSum > 0 {
					st.Share = stageSum[i] / meanSum
				}
				rs.Stages[i] = st
			}
			rs.MatMulMs = kernels[0] / float64(rs.Served)
			rs.ConvMs = kernels[1] / float64(rs.Served)
			rs.AttnMs = kernels[2] / float64(rs.Served)
		} else {
			for i := range rs.Stages {
				rs.Stages[i] = TraceStageStats{Stage: obs.StageNames[i]}
			}
		}
		s.Served += rs.Served
		s.Routes = append(s.Routes, rs)
	}
	return s
}

// Render prints the stage-breakdown and causality tables in the repo's
// plain-text report idiom. Output is byte-deterministic for a given span
// set: routes and outcome rows are sorted, and every figure derives from
// exact quantiles over the same spans.
func (s *TraceSummary) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace: %d spans, %d served, %d routes\n", s.Spans, s.Served, len(s.Routes))
	for _, rs := range s.Routes {
		fmt.Fprintf(&sb, "route %s: %d spans, %d served", rs.Route, rs.Spans, rs.Served)
		if rs.Served > 0 {
			fmt.Fprintf(&sb, ", e2e %s ms (mean %.3f)", rs.EndToEnd, rs.MeanMs)
		}
		sb.WriteByte('\n')
		if rs.Served > 0 {
			fmt.Fprintf(&sb, "  %-9s | %9s | %9s | %9s | %6s\n", "stage", "p50 ms", "p95 ms", "mean ms", "% e2e")
			for _, st := range rs.Stages {
				fmt.Fprintf(&sb, "  %-9s | %9.3f | %9.3f | %9.3f | %5.1f%%\n",
					st.Stage, st.P50Ms, st.P95Ms, st.MeanMs, 100*st.Share)
			}
			if rs.MatMulMs > 0 || rs.ConvMs > 0 || rs.AttnMs > 0 {
				fmt.Fprintf(&sb, "  kernels/request: matmul %.3f ms, conv %.3f ms, attention %.3f ms\n",
					rs.MatMulMs, rs.ConvMs, rs.AttnMs)
			}
		}
		causes := make([]string, 0, len(rs.Outcomes))
		for o := range rs.Outcomes {
			if o != obs.OutcomeServed {
				causes = append(causes, o)
			}
		}
		sort.Strings(causes)
		for _, o := range causes {
			fmt.Fprintf(&sb, "  cause %-24s %5d\n", o, rs.Outcomes[o])
		}
		if rs.Flagged > 0 {
			fmt.Fprintf(&sb, "  flagged spans: %d\n", rs.Flagged)
		}
	}
	return sb.String()
}

// SummarizeRoundSpans renders the federated round-phase breakdown line the
// flsim summary prints when a run was traced: mean milliseconds per round
// spent in each phase (client training, update transport, aggregation
// rule, model broadcast) with its share of the round total.
func SummarizeRoundSpans(spans []obs.RoundSpan) string {
	if len(spans) == 0 {
		return ""
	}
	var sums [4]float64
	var total float64
	for _, rs := range spans {
		for i, ns := range rs.Phases() {
			v := float64(ns) * msPerNS
			sums[i] += v
			total += v
		}
	}
	n := float64(len(spans))
	var sb strings.Builder
	fmt.Fprintf(&sb, "round phases (%d rounds):", len(spans))
	for i, name := range obs.RoundPhaseNames {
		share := 0.0
		if total > 0 {
			share = sums[i] / total
		}
		fmt.Fprintf(&sb, " %s %.3f ms (%.1f%%)", name, sums[i]/n, 100*share)
	}
	return sb.String()
}

// Validate checks the structural invariants of a span set: every span's
// stage durations must be non-negative and sum exactly to its end-to-end
// latency, and served spans must carry the full offset chain. The CI trace
// smoke cell fails the build on the first violated span.
func ValidateSpans(recs []obs.SpanRecord) error {
	for _, sp := range recs {
		var sum int64
		for i, d := range sp.Stages() {
			if d < 0 {
				return fmt.Errorf("span %d (%s, %s): negative %s stage %dns",
					sp.ID, sp.Route, sp.Outcome, obs.StageNames[i], d)
			}
			sum += d
		}
		if sum != sp.End() {
			return fmt.Errorf("span %d (%s, %s): stage sum %dns != end-to-end %dns",
				sp.ID, sp.Route, sp.Outcome, sum, sp.End())
		}
		if sp.Outcome == obs.OutcomeServed {
			for _, off := range []int64{sp.Enqueued, sp.Pickup, sp.InferStart, sp.InferEnd} {
				if off == obs.NoOffset {
					return fmt.Errorf("span %d (%s): served span missing offsets", sp.ID, sp.Route)
				}
			}
		}
	}
	return nil
}
