package eval

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"pelta/internal/attack"
	"pelta/internal/dataset"
	"pelta/internal/imageio"
	"pelta/internal/models"
	"pelta/internal/tensor"
)

// Fig4Panel is one shielding setting's outcome on the probe sample.
type Fig4Panel struct {
	Setting      ShieldSetting
	PredViT      int
	PredBiT      int
	Success      bool           // did SAGA flip at least one member's prediction?
	Perturbation *tensor.Tensor // xadv − x0, [C,H,W]
	XAdv         *tensor.Tensor // [C,H,W]
}

// Fig4Result reproduces Fig. 4: one correctly classified sample attacked by
// SAGA under the four shielding settings.
type Fig4Result struct {
	Label    int
	Original *tensor.Tensor
	Panels   []Fig4Panel
}

// RunFig4 picks the first jointly correctly classified validation sample
// and runs SAGA under every shielding setting.
func RunFig4(vit *models.ViT, bit *models.BiT, val *dataset.Dataset, set AttackSet) (*Fig4Result, error) {
	x, y, err := SelectCorrect([]models.Model{vit, bit}, val, 1)
	if err != nil {
		return nil, err
	}
	res := &Fig4Result{Label: y[0], Original: x.Slice(0).Clone()}
	saga := set.SAGA()
	rollout := &attack.ViTRollout{V: vit}
	for _, setting := range []ShieldSetting{ShieldNone, ShieldBiTOnly, ShieldViTOnly, ShieldBoth} {
		vitO := ClearOracleFor(vit)
		bitO := ClearOracleFor(bit)
		if setting == ShieldViTOnly || setting == ShieldBoth {
			_, so, _, err := Oracles(vit, set.Seed+int64(setting))
			if err != nil {
				return nil, err
			}
			vitO = so
		}
		if setting == ShieldBiTOnly || setting == ShieldBoth {
			_, so, _, err := Oracles(bit, set.Seed+20+int64(setting))
			if err != nil {
				return nil, err
			}
			bitO = so
		}
		xadv, err := saga.Perturb(vitO, rollout, bitO, x, y)
		if err != nil {
			return nil, fmt.Errorf("eval: fig4 SAGA under %s: %w", setting, err)
		}
		pv := models.Predict(vit, xadv)[0]
		pb := models.Predict(bit, xadv)[0]
		res.Panels = append(res.Panels, Fig4Panel{
			Setting:      setting,
			PredViT:      pv,
			PredBiT:      pb,
			Success:      pv != y[0] || pb != y[0],
			Perturbation: tensor.Sub(xadv.Slice(0), x.Slice(0)),
			XAdv:         xadv.Slice(0).Clone(),
		})
	}
	return res, nil
}

// Render prints the per-setting verdicts in the Fig. 4 layout.
func (r *Fig4Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig. 4 — SAGA adversarial sample (true class %d) under four shielding settings\n", r.Label)
	for _, p := range r.Panels {
		verdict := "failure"
		if p.Success {
			verdict = "success"
		}
		fmt.Fprintf(&sb, "%-9s ViT→%d BiT→%d  mean|δ|=%.4f  attack %s\n",
			p.Setting, p.PredViT, p.PredBiT, tensor.Mean(tensor.Abs(p.Perturbation)), verdict)
	}
	return sb.String()
}

// WriteImages dumps the original, the perturbations and the perturbed
// samples as PPM/PGM files into dir.
func (r *Fig4Result) WriteImages(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("eval: creating %s: %w", dir, err)
	}
	if err := WritePPM(filepath.Join(dir, "original.ppm"), r.Original); err != nil {
		return err
	}
	for _, p := range r.Panels {
		tag := strings.ReplaceAll(strings.ToLower(p.Setting.String()), " ", "_")
		if err := WritePPM(filepath.Join(dir, "perturbed_"+tag+".ppm"), p.XAdv); err != nil {
			return err
		}
		if err := WritePGM(filepath.Join(dir, "perturbation_"+tag+".pgm"), p.Perturbation); err != nil {
			return err
		}
	}
	return nil
}

// WritePPM saves a [3,H,W] tensor with values in [0,1] as a binary PPM.
func WritePPM(path string, img *tensor.Tensor) error { return imageio.WritePPM(path, img) }

// WritePGM saves the per-pixel magnitude of a [C,H,W] tensor as a grayscale
// PGM, normalized to the maximum (perturbations are tiny).
func WritePGM(path string, img *tensor.Tensor) error { return imageio.WritePGM(path, img) }
