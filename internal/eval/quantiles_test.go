package eval

import (
	"math"
	"math/rand"
	"testing"
)

func TestQuantileExactRanks(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i + 1) // 1..100
	}
	// Shuffle: Quantile must sort a copy, not require sorted input.
	rng := rand.New(rand.NewSource(5))
	rng.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })

	q := Quantiles(vals)
	// Linear interpolation between closest ranks on 1..100:
	// p50 at pos 49.5 → 50.5, p95 at 94.05 → 95.05, p99 at 98.01 → 99.01.
	for _, tt := range []struct{ got, want float64 }{
		{q.P50, 50.5}, {q.P95, 95.05}, {q.P99, 99.01},
	} {
		if math.Abs(tt.got-tt.want) > 1e-9 {
			t.Errorf("quantile = %v, want %v", tt.got, tt.want)
		}
	}
	// The input must be untouched (still shuffled).
	sortedPrefix := true
	for i := 1; i < len(vals); i++ {
		if vals[i] < vals[i-1] {
			sortedPrefix = false
			break
		}
	}
	if sortedPrefix {
		t.Error("Quantiles sorted its input in place")
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	if got := Quantile([]float64{7}, 0.99); got != 7 {
		t.Errorf("single element: %v", got)
	}
	if got := Quantile([]float64{3, 1}, 0); got != 1 {
		t.Errorf("q=0 must be the min, got %v", got)
	}
	if got := Quantile([]float64{3, 1}, 1); got != 3 {
		t.Errorf("q=1 must be the max, got %v", got)
	}
	if got := Quantile([]float64{1, 2}, 0.5); got != 1.5 {
		t.Errorf("even-length median = %v, want 1.5", got)
	}
}

// TestQuantileBoundedMonotone checks the order statistics properties on
// random data: every quantile lies within [min,max] and q↦Quantile(q) is
// non-decreasing.
func TestQuantileBoundedMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vals := make([]float64, 257)
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 10
		lo = math.Min(lo, vals[i])
		hi = math.Max(hi, vals[i])
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := Quantile(vals, q)
		if v < lo || v > hi {
			t.Fatalf("Quantile(%v) = %v outside [%v,%v]", q, v, lo, hi)
		}
		if v < prev {
			t.Fatalf("Quantile(%v) = %v < previous %v (not monotone)", q, v, prev)
		}
		prev = v
	}
}
