package eval

import (
	"fmt"
	"strings"

	"pelta/internal/attack"
	"pelta/internal/dataset"
	"pelta/internal/models"
)

// Table3Cell holds one attack's result pair: robust accuracy without and
// with the Pelta shield (the left/right value pairs of Table III).
type Table3Cell struct {
	Attack   string
	Clear    float64
	Shielded float64
}

// Table3Row is one defender's line in Table III.
type Table3Row struct {
	Model string
	Clean float64
	Cells []Table3Cell
}

// Table3 holds one dataset block of Table III.
type Table3 struct {
	Dataset string
	Rows    []Table3Row
}

// RunTable3Row evaluates one trained defender against the five attacks in
// both settings on n astuteness samples from val.
func RunTable3Row(m models.Model, val *dataset.Dataset, n int, set AttackSet) (Table3Row, error) {
	x, y, err := SelectCorrect([]models.Model{m}, val, n)
	if err != nil {
		return Table3Row{}, fmt.Errorf("eval: %s: %w", m.Name(), err)
	}
	clearO := ClearOracleFor(m)
	// One shielded oracle per kernel draw.
	shieldOs := make([]attack.Oracle, KernelDraws)
	for k := range shieldOs {
		_, so, _, err := Oracles(m, set.Seed+int64(1000*k))
		if err != nil {
			return Table3Row{}, err
		}
		shieldOs[k] = so
	}
	row := Table3Row{Model: m.Name(), Clean: models.Accuracy(m, val.X, val.Y)}
	for _, atk := range set.Attacks() {
		cell := Table3Cell{Attack: atk.Name()}
		xc, err := atk.Perturb(clearO, x, y)
		if err != nil {
			return Table3Row{}, fmt.Errorf("eval: %s vs clear %s: %w", atk.Name(), m.Name(), err)
		}
		cell.Clear = RobustAccuracy(m, xc, y)
		robust := make([]float64, 0, KernelDraws)
		for _, so := range shieldOs {
			xs, err := atk.Perturb(so, x, y)
			if err != nil {
				return Table3Row{}, fmt.Errorf("eval: %s vs shielded %s: %w", atk.Name(), m.Name(), err)
			}
			robust = append(robust, RobustAccuracy(m, xs, y))
		}
		cell.Shielded = Median(robust)
		row.Cells = append(row.Cells, cell)
	}
	return row, nil
}

// Render prints the dataset block in the paper's layout: one "clear% /
// shielded%" pair per attack, higher values favoring the defender.
func (t Table3) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s", t.Dataset)
	if len(t.Rows) > 0 {
		for _, c := range t.Rows[0].Cells {
			fmt.Fprintf(&sb, " %16s", c.Attack)
		}
		fmt.Fprintf(&sb, " %7s\n", "Clean")
	}
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-14s", r.Model)
		for _, c := range r.Cells {
			fmt.Fprintf(&sb, "  %6.1f%% %6.1f%%", 100*c.Clear, 100*c.Shielded)
		}
		fmt.Fprintf(&sb, " %6.1f%%\n", 100*r.Clean)
	}
	return sb.String()
}
