package eval

import (
	"fmt"
	"strings"
	"time"

	"pelta/internal/serve"
)

// SummarizeServeLoad condenses a load-generator run into the serving
// questions the ROADMAP asks: what rate did the shielded service sustain,
// with what tail latency, how much was shed past the admission limit, and
// did the shield keep blunting the adversarial share of the traffic.
type ServeLoadSummary struct {
	Report *serve.LoadReport
	// Latency is the exact p50/p95/p99 over every served request, from
	// the same samples the serve metrics sketch approximates.
	Latency Q
}

// SummarizeServeLoad computes the exact latency quantiles of a report.
func SummarizeServeLoad(rep *serve.LoadReport) *ServeLoadSummary {
	s := &ServeLoadSummary{Report: rep}
	if len(rep.LatenciesMs) > 0 {
		s.Latency = Quantiles(rep.LatenciesMs)
	}
	return s
}

// pct renders a (value, ok) accuracy as a percentage, or "n/a" when
// nothing was served — a fully shed stream must not read as 0% accuracy.
func pct(v float64, ok bool) string {
	if !ok {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*v)
}

// accuracyFooter writes the benign/adversarial per-stream lines shared by
// the plain and phased renderers.
func accuracyFooter(sb *strings.Builder, rep *serve.LoadReport) {
	if rep.BenignSent > 0 {
		fmt.Fprintf(sb, "benign traffic:      %4d served, %4d shed, accuracy %s\n",
			rep.BenignServed, rep.BenignShed, pct(rep.BenignAccuracy()))
	}
	if rep.AdvSent > 0 {
		fmt.Fprintf(sb, "adversarial probes:  %4d served, %4d shed, robust accuracy %s\n",
			rep.AdvServed, rep.AdvShed, pct(rep.AdvRobustAccuracy()))
	}
}

// ms renders a latency cell, or "n/a" when the phase served nothing — a
// fully shed phase must not read as 0.0 ms.
func ms(v float64, served int) string {
	if served == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f", v)
}

// Render prints the summary in the repo's plain-text report idiom.
func (s *ServeLoadSummary) Render() string {
	rep := s.Report
	var sb strings.Builder
	fmt.Fprintf(&sb, "load: %d requests offered at %.0f req/s — %d served (%.1f req/s), %d shed, %d failed in %.2fs\n",
		rep.Sent, rep.OfferedRate, rep.Served, rep.Throughput, rep.Shed, rep.Failed, rep.Seconds)
	if rep.Served > 0 {
		fmt.Fprintf(&sb, "latency: %s ms, mean batch %.1f\n", s.Latency, rep.MeanBatch)
	}
	accuracyFooter(&sb, rep)
	return sb.String()
}

// ServePhasesSummary condenses a phased load run: the per-phase, per-route
// shed/latency table answering the control-plane questions — did the burst
// phase shed, who paid for it (benign vs adv), and what did the tail
// latency do while the autoscaler reacted.
type ServePhasesSummary struct {
	Report *serve.PhasedReport
	// PhaseLatency is the exact latency quantile triple per phase; Total
	// covers the whole run.
	PhaseLatency []Q
	Total        Q
}

// SummarizeServePhases computes the exact per-phase latency quantiles.
func SummarizeServePhases(rep *serve.PhasedReport) *ServePhasesSummary {
	s := &ServePhasesSummary{Report: rep, PhaseLatency: make([]Q, len(rep.Phases))}
	for i, p := range rep.Phases {
		if len(p.LatenciesMs) > 0 {
			s.PhaseLatency[i] = Quantiles(p.LatenciesMs)
		}
	}
	if len(rep.Total.LatenciesMs) > 0 {
		s.Total = Quantiles(rep.Total.LatenciesMs)
	}
	return s
}

// Render prints the per-phase table plus the aggregate accuracy lines.
func (s *ServePhasesSummary) Render() string {
	rep := s.Report
	var sb strings.Builder
	fmt.Fprintf(&sb, "phased load: %d phases, %d requests — %d served (%.1f req/s), %d shed (benign %d / adv %d), %d failed in %.2fs\n",
		len(rep.Phases), rep.Total.Sent, rep.Total.Served, rep.Total.Throughput,
		rep.Total.Shed, rep.Total.BenignShed, rep.Total.AdvShed, rep.Total.Failed, rep.Total.Seconds)
	fmt.Fprintf(&sb, "%-5s | %7s | %6s | %4s | %6s | %6s | %11s | %8s | %7s\n",
		"phase", "offered", "dur", "adv%", "sent", "served", "benign shed", "adv shed", "p95 ms")
	for i, p := range rep.Phases {
		fmt.Fprintf(&sb, "%5d | %7.0f | %6s | %3.0f%% | %6d | %6d | %11d | %8d | %7s\n",
			i+1, p.Phase.Rate, p.Phase.Duration.Round(time.Millisecond), 100*p.Phase.AdvFrac,
			p.Sent, p.Served, p.BenignShed, p.AdvShed, ms(s.PhaseLatency[i].P95, p.Served))
	}
	fmt.Fprintf(&sb, "%5s | %7.0f | %6s | %4s | %6d | %6d | %11d | %8d | %7s\n",
		"total", rep.Total.OfferedRate, "", "", rep.Total.Sent, rep.Total.Served,
		rep.Total.BenignShed, rep.Total.AdvShed, ms(s.Total.P95, rep.Total.Served))
	accuracyFooter(&sb, &rep.Total)
	return sb.String()
}
