package eval

import (
	"fmt"
	"strings"

	"pelta/internal/serve"
)

// SummarizeServeLoad condenses a load-generator run into the serving
// questions the ROADMAP asks: what rate did the shielded service sustain,
// with what tail latency, how much was shed past the admission limit, and
// did the shield keep blunting the adversarial share of the traffic.
type ServeLoadSummary struct {
	Report *serve.LoadReport
	// Latency is the exact p50/p95/p99 over every served request, from
	// the same samples the serve metrics sketch approximates.
	Latency Q
}

// SummarizeServeLoad computes the exact latency quantiles of a report.
func SummarizeServeLoad(rep *serve.LoadReport) *ServeLoadSummary {
	s := &ServeLoadSummary{Report: rep}
	if len(rep.LatenciesMs) > 0 {
		s.Latency = Quantiles(rep.LatenciesMs)
	}
	return s
}

// Render prints the summary in the repo's plain-text report idiom.
func (s *ServeLoadSummary) Render() string {
	rep := s.Report
	var sb strings.Builder
	fmt.Fprintf(&sb, "load: %d requests offered at %.0f req/s — %d served (%.1f req/s), %d shed, %d failed in %.2fs\n",
		rep.Sent, rep.OfferedRate, rep.Served, rep.Throughput, rep.Shed, rep.Failed, rep.Seconds)
	if rep.Served > 0 {
		fmt.Fprintf(&sb, "latency: %s ms, mean batch %.1f\n", s.Latency, rep.MeanBatch)
	}
	if rep.BenignServed > 0 {
		fmt.Fprintf(&sb, "benign traffic:      %4d served, accuracy %.1f%%\n",
			rep.BenignServed, 100*rep.BenignAccuracy())
	}
	if rep.AdvServed > 0 {
		fmt.Fprintf(&sb, "adversarial probes:  %4d served, robust accuracy %.1f%%\n",
			rep.AdvServed, 100*rep.AdvRobustAccuracy())
	}
	return sb.String()
}
