package eval

import (
	"fmt"
	"strings"

	"pelta/internal/attack"
	"pelta/internal/dataset"
	"pelta/internal/ensemble"
	"pelta/internal/models"
	"pelta/internal/tensor"
)

// ShieldSetting is one Table IV column: which ensemble members carry the
// Pelta shield while SAGA attacks the pair.
type ShieldSetting int

// The four Table IV settings.
const (
	ShieldNone ShieldSetting = iota
	ShieldViTOnly
	ShieldBiTOnly
	ShieldBoth
)

// String returns the Table IV column label.
func (s ShieldSetting) String() string {
	switch s {
	case ShieldNone:
		return "None"
	case ShieldViTOnly:
		return "ViT only"
	case ShieldBiTOnly:
		return "BiT only"
	case ShieldBoth:
		return "Ensemble"
	default:
		return fmt.Sprintf("ShieldSetting(%d)", int(s))
	}
}

// Table4Column holds the per-model robust accuracies under one setting.
type Table4Column struct {
	Setting  ShieldSetting
	ViT      float64
	BiT      float64
	Ensemble float64
}

// Table4 is one dataset block of Table IV.
type Table4 struct {
	Dataset string
	// Baseline columns.
	CleanViT, CleanBiT, CleanEns    float64
	RandomViT, RandomBiT, RandomEns float64
	Columns                         []Table4Column
}

// RunTable4 runs the full SAGA grid for a trained ViT+BiT pair on n
// jointly correctly classified samples.
func RunTable4(vit *models.ViT, bit *models.BiT, val *dataset.Dataset, n int, set AttackSet) (*Table4, error) {
	x, y, err := SelectCorrect([]models.Model{vit, bit}, val, n)
	if err != nil {
		return nil, err
	}
	out := &Table4{Dataset: val.Name}
	ens := ensemble.New(&ensemble.ClearMember{M: vit}, &ensemble.ClearMember{M: bit}, set.Seed)

	// Baselines: clean accuracy and random-uniform astuteness.
	out.CleanEns, out.CleanViT, out.CleanBiT, err = ens.Accuracy(val.X, val.Y)
	if err != nil {
		return nil, err
	}
	xr, err := set.Random().Perturb(nil, x, y)
	if err != nil {
		return nil, err
	}
	out.RandomEns, out.RandomViT, out.RandomBiT, err = ens.Accuracy(xr, y)
	if err != nil {
		return nil, err
	}

	saga := set.SAGA()
	rollout := &attack.ViTRollout{V: vit}
	for _, setting := range []ShieldSetting{ShieldNone, ShieldViTOnly, ShieldBiTOnly, ShieldBoth} {
		draws := KernelDraws
		if setting == ShieldNone {
			draws = 1 // no random kernel involved
		}
		ensAcc := make([]float64, 0, draws)
		vitAcc := make([]float64, 0, draws)
		bitAcc := make([]float64, 0, draws)
		for k := 0; k < draws; k++ {
			vitO := ClearOracleFor(vit)
			bitO := ClearOracleFor(bit)
			if setting == ShieldViTOnly || setting == ShieldBoth {
				_, so, _, err := Oracles(vit, set.Seed+int64(setting)+int64(1000*k))
				if err != nil {
					return nil, err
				}
				vitO = so
			}
			if setting == ShieldBiTOnly || setting == ShieldBoth {
				_, so, _, err := Oracles(bit, set.Seed+10+int64(setting)+int64(1000*k))
				if err != nil {
					return nil, err
				}
				bitO = so
			}
			xadv, err := saga.Perturb(vitO, rollout, bitO, x, y)
			if err != nil {
				return nil, fmt.Errorf("eval: SAGA under %s: %w", setting, err)
			}
			e, v, bb, err := ens.Accuracy(xadv, y)
			if err != nil {
				return nil, err
			}
			ensAcc = append(ensAcc, e)
			vitAcc = append(vitAcc, v)
			bitAcc = append(bitAcc, bb)
		}
		out.Columns = append(out.Columns, Table4Column{
			Setting:  setting,
			ViT:      Median(vitAcc),
			BiT:      Median(bitAcc),
			Ensemble: Median(ensAcc),
		})
	}
	return out, nil
}

// Render prints the block in the paper's Table IV layout.
func (t *Table4) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %8s %8s", t.Dataset, "Clean", "Random")
	for _, c := range t.Columns {
		fmt.Fprintf(&sb, " %9s", c.Setting)
	}
	sb.WriteString("\n")
	row := func(name string, clean, random float64, pick func(Table4Column) float64) {
		fmt.Fprintf(&sb, "%-12s %7.1f%% %7.1f%%", name, 100*clean, 100*random)
		for _, c := range t.Columns {
			fmt.Fprintf(&sb, " %8.1f%%", 100*pick(c))
		}
		sb.WriteString("\n")
	}
	row("ViT", t.CleanViT, t.RandomViT, func(c Table4Column) float64 { return c.ViT })
	row("BiT", t.CleanBiT, t.RandomBiT, func(c Table4Column) float64 { return c.BiT })
	row("Ensemble", t.CleanEns, t.RandomEns, func(c Table4Column) float64 { return c.Ensemble })
	return sb.String()
}

// PerturbationEnergy returns the mean absolute pixel change of an attack
// output, used by the Fig. 4 dumps.
func PerturbationEnergy(x0, xadv *tensor.Tensor) float64 {
	diff := tensor.Sub(xadv, x0)
	return tensor.Mean(tensor.Abs(diff))
}
