package eval_test

import (
	"strings"
	"testing"

	"pelta/internal/eval"
	"pelta/internal/obs"
)

// span builds a served record with the given per-stage durations (ns).
func span(id uint64, route string, detect, admission, queue, batch, infer int64) obs.SpanRecord {
	sp := obs.SpanRecord{ID: id, Route: route, Outcome: obs.OutcomeServed}
	sp.DetectStart = 0
	sp.DetectEnd = detect
	sp.Enqueued = sp.DetectEnd + admission
	sp.Pickup = sp.Enqueued + queue
	sp.InferStart = sp.Pickup + batch
	sp.InferEnd = sp.InferStart + infer
	return sp
}

func TestSummarizeTraceStageTable(t *testing.T) {
	const ms = int64(1e6)
	recs := []obs.SpanRecord{
		span(1, "benign", 1*ms, 0, 2*ms, 1*ms, 10*ms),
		span(2, "benign", 1*ms, 0, 4*ms, 1*ms, 20*ms),
		span(3, "benign", 1*ms, 0, 6*ms, 1*ms, 30*ms),
		{ID: 4, Route: "benign", Outcome: obs.OutcomeShedQueueFull, Flagged: true,
			DetectStart: obs.NoOffset, DetectEnd: obs.NoOffset, Enqueued: obs.NoOffset,
			Pickup: obs.NoOffset, InferStart: obs.NoOffset, InferEnd: obs.NoOffset},
		{ID: 5, Route: "adv", Outcome: obs.OutcomeShedDetect, Flagged: true,
			DetectStart: 0, DetectEnd: 1 * ms, Enqueued: obs.NoOffset,
			Pickup: obs.NoOffset, InferStart: obs.NoOffset, InferEnd: obs.NoOffset},
	}
	s := eval.SummarizeTrace(recs)
	if s.Spans != 5 || s.Served != 3 || len(s.Routes) != 2 {
		t.Fatalf("summary header: %+v", s)
	}
	// Routes sorted: adv first.
	if s.Routes[0].Route != "adv" || s.Routes[0].Served != 0 || s.Routes[0].Outcomes[obs.OutcomeShedDetect] != 1 {
		t.Fatalf("adv route: %+v", s.Routes[0])
	}
	b := s.Routes[1]
	if b.Served != 3 || b.Spans != 4 || b.Flagged != 1 || b.Outcomes[obs.OutcomeShedQueueFull] != 1 {
		t.Fatalf("benign route: %+v", b)
	}
	if b.EndToEnd.P50 != 26 {
		t.Fatalf("e2e p50 %v, want 26ms", b.EndToEnd.P50)
	}
	// Stage medians: detect 1, admission 0, queue 4, batch 1, infer 20.
	wantP50 := []float64{1, 0, 4, 1, 20}
	var p50Sum float64
	for i, st := range b.Stages {
		if st.P50Ms != wantP50[i] {
			t.Fatalf("stage %s p50 %v, want %v", st.Stage, st.P50Ms, wantP50[i])
		}
		p50Sum += st.P50Ms
	}
	if p50Sum != b.EndToEnd.P50 {
		t.Fatalf("stage p50 sum %v != e2e p50 %v", p50Sum, b.EndToEnd.P50)
	}
	// Shares partition exactly.
	var share float64
	for _, st := range b.Stages {
		share += st.Share
	}
	if share < 0.999999 || share > 1.000001 {
		t.Fatalf("stage shares sum to %v, want 1", share)
	}

	out := s.Render()
	for _, want := range []string{
		"trace: 5 spans, 3 served, 2 routes",
		"route adv:",
		"cause shed-detect",
		"cause shed-queue-full",
		"flagged spans: 1",
		"infer",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if s.Render() != out {
		t.Fatal("render not deterministic")
	}
}

func TestValidateSpans(t *testing.T) {
	const ms = int64(1e6)
	good := span(1, "r", ms, 0, ms, 0, ms)
	if err := eval.ValidateSpans([]obs.SpanRecord{good}); err != nil {
		t.Fatal(err)
	}
	// Regressed chain: pickup before enqueue yields a negative queue stage.
	bad := good
	bad.Pickup = bad.Enqueued - ms
	bad.InferStart, bad.InferEnd = bad.Pickup, bad.Pickup
	if err := eval.ValidateSpans([]obs.SpanRecord{bad}); err == nil {
		t.Fatal("negative stage not caught")
	}
	// Served span with a missing offset.
	hole := good
	hole.InferEnd = obs.NoOffset
	if err := eval.ValidateSpans([]obs.SpanRecord{hole}); err == nil {
		t.Fatal("missing served offset not caught")
	}
}

func TestSummarizeRoundSpans(t *testing.T) {
	if got := eval.SummarizeRoundSpans(nil); got != "" {
		t.Fatalf("empty spans rendered %q", got)
	}
	spans := []obs.RoundSpan{
		{Round: 1, Clients: 4, TrainNS: 8e6, TransportNS: 1e6, AggregateNS: 0.5e6, BroadcastNS: 0.5e6},
		{Round: 2, Clients: 4, TrainNS: 12e6, TransportNS: 1e6, AggregateNS: 0.5e6, BroadcastNS: 0.5e6},
	}
	out := eval.SummarizeRoundSpans(spans)
	for _, want := range []string{
		"round phases (2 rounds):",
		"train 10.000 ms",
		"transport 1.000 ms",
		"aggregate 0.500 ms",
		"broadcast 0.500 ms",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q: %s", want, out)
		}
	}
}
