package eval

import (
	"fmt"

	"pelta/internal/attack"
	"pelta/internal/core"
	"pelta/internal/dataset"
	"pelta/internal/models"
	"pelta/internal/tensor"
)

// SelectCorrect returns up to n samples of d that every model in ms
// classifies correctly — the astuteness protocol selects only correctly
// classified samples so clean robust accuracy starts at 100%.
func SelectCorrect(ms []models.Model, d *dataset.Dataset, n int) (*tensor.Tensor, []int, error) {
	preds := make([][]int, len(ms))
	for i, m := range ms {
		preds[i] = models.Predict(m, d.X)
	}
	var idx []int
	for i := 0; i < d.Len() && len(idx) < n; i++ {
		ok := true
		for _, p := range preds {
			if p[i] != d.Y[i] {
				ok = false
				break
			}
		}
		if ok {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		return nil, nil, fmt.Errorf("eval: no jointly correct samples (weak defenders)")
	}
	sub := d.Subset(idx)
	return sub.X, sub.Y, nil
}

// RobustAccuracy scores the defender on the perturbed batch: the fraction
// still classified as the true label.
func RobustAccuracy(m models.Model, xadv *tensor.Tensor, y []int) float64 {
	return models.Accuracy(m, xadv, y)
}

// AttackSet builds the Table II attack roster for a given ε budget. The ε
// values are rescaled relative to the paper (0.031/0.062) because the
// synthetic datasets have wider class margins; see EXPERIMENTS.md.
type AttackSet struct {
	Eps     float32
	EpsStep float32
	Steps   int
	Seed    int64
}

// DefaultAttackSet mirrors Table II proportions at ε = 0.1.
func DefaultAttackSet() AttackSet {
	return AttackSet{Eps: 0.1, EpsStep: 0.0125, Steps: 20, Seed: 1}
}

// Attacks instantiates the five individual-model attacks of Table III.
func (s AttackSet) Attacks() []attack.Attack {
	return []attack.Attack{
		&attack.FGSM{Eps: s.Eps},
		&attack.PGD{Eps: s.Eps, Step: s.EpsStep, Steps: s.Steps},
		&attack.MIM{Eps: s.Eps, Step: s.EpsStep, Steps: s.Steps, Mu: 1.0},
		&attack.CW{Confidence: 0, Step: 0.01, Steps: s.Steps + 10, C: 0.05},
		&attack.APGD{Eps: s.Eps, Steps: s.Steps, Rho: 0.75, Restarts: 1, Seed: s.Seed},
	}
}

// SAGA instantiates the ensemble attack of Table IV.
func (s AttackSet) SAGA() *attack.SAGA {
	return &attack.SAGA{Eps: s.Eps, Step: s.EpsStep, Steps: s.Steps, AlphaK: 0.5}
}

// Random instantiates the Table IV random-uniform baseline.
func (s AttackSet) Random() *attack.RandomUniform {
	return &attack.RandomUniform{Eps: s.Eps, Seed: s.Seed}
}

// KernelDraws is the number of random upsampling kernels sampled when
// evaluating shielded attacks. At paper scale (768-dimensional patches) the
// behaviour of the random kernel concentrates and one draw is typical; at
// this reproduction's reduced scale a single kernel occasionally aligns
// with the true backward operator by chance, so the harness reports the
// median robust accuracy over several draws (see EXPERIMENTS.md).
const KernelDraws = 3

// Median returns the median of a non-empty slice (its input is sorted in
// place).
func Median(vals []float64) float64 {
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	return vals[len(vals)/2]
}

// oracleWorkers bounds the attack-oracle worker pool (0 = GOMAXPROCS).
var oracleWorkers = 0

// SetOracleWorkers bounds the per-oracle worker pool used by the evaluation
// harness (0 restores the GOMAXPROCS default). Each worker owns a pooled
// graph arena over the shared model weights.
func SetOracleWorkers(n int) { oracleWorkers = n }

// ClearOracleFor returns the harness's standard clear oracle for m: pooled
// arenas fanned across the configured worker count.
func ClearOracleFor(m models.Model) attack.Oracle {
	return attack.NewParallelClearOracle(m, oracleWorkers)
}

// Oracles returns the clear and shielded gradient oracles for m. The clear
// oracle fans batch queries across one pooled worker per core.
func Oracles(m models.Model, seed int64) (clear attack.Oracle, shielded attack.Oracle, sm *core.ShieldedModel, err error) {
	sm, err = core.NewShieldedModel(m, 0)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("eval: shielding %s: %w", m.Name(), err)
	}
	so, err := attack.NewShieldedOracle(sm, seed)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("eval: building shielded oracle for %s: %w", m.Name(), err)
	}
	return ClearOracleFor(m), so, sm, nil
}
