package eval

import (
	"fmt"
	"sort"
)

// Q holds the p50/p95/p99 summary reported wherever the repo condenses a
// latency or throughput distribution: the serving metrics of internal/serve
// and the sweep summaries below.
type Q struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// String renders the triple in the report idiom of the table renderers.
func (q Q) String() string {
	return fmt.Sprintf("p50 %.3g  p95 %.3g  p99 %.3g", q.P50, q.P95, q.P99)
}

// Quantile returns the q-quantile (q in [0,1]) of a non-empty slice by
// linear interpolation between closest ranks on a sorted copy — the exact
// sorted-slice definition the streaming sketches in internal/serve are
// validated against. vals is not modified.
func Quantile(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		panic("eval: Quantile of empty slice")
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// quantileSorted interpolates on an already-sorted slice.
func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// Quantiles returns the exact p50/p95/p99 of a non-empty slice, sorting a
// copy once for all three ranks. vals is not modified.
func Quantiles(vals []float64) Q {
	if len(vals) == 0 {
		panic("eval: Quantiles of empty slice")
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	return Q{
		P50: quantileSorted(sorted, 0.50),
		P95: quantileSorted(sorted, 0.95),
		P99: quantileSorted(sorted, 0.99),
	}
}
