package eval

import (
	"strings"
	"testing"

	"pelta/internal/fl"
)

func sweepRow(attack string, shield bool, skew, robust, acc float64) fl.SweepRow {
	r := fl.SweepRow{
		SweepCell: fl.SweepCell{Clients: 3, Skew: skew, Shield: shield, Attack: attack},
		Rounds:    2, Seed: 1,
		FinalAccuracy: acc, RobustAccuracy: robust,
		Seconds: 0.5, RoundsPerSec: 4, Merged: 6,
	}
	if attack != "none" {
		r.ProbeSamples = 8
		r.Fooled = int((1 - robust) * 8)
	}
	return r
}

func TestReadSweepRowsRoundTrip(t *testing.T) {
	ndjson := `
{"clients":3,"skew":0,"shield":false,"attack":"pgd","poison_frac":0,"rounds":2,"seed":1,"final_accuracy":0.8,"robust_accuracy":0.25,"probe_samples":8,"fooled":6,"poison_effective":0,"down_bytes":10,"up_bytes":30,"seconds":0.4,"rounds_per_sec":5,"merged":6,"stale_merged":0,"duplicates":0,"rejected":0,"drops":0}

{"clients":3,"skew":0.8,"shield":true,"attack":"pgd","poison_frac":0,"rounds":2,"seed":1,"final_accuracy":0.7,"robust_accuracy":0.9,"probe_samples":8,"fooled":1,"poison_effective":0,"down_bytes":10,"up_bytes":30,"seconds":0.4,"rounds_per_sec":5,"merged":6,"stale_merged":1,"duplicates":0,"rejected":0,"drops":0}
`
	rows, err := ReadSweepRows(strings.NewReader(ndjson))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2 (blank lines must be skipped)", len(rows))
	}
	if rows[0].Attack != "pgd" || rows[1].Shield != true || rows[1].StaleMerged != 1 {
		t.Fatalf("rows decoded wrong: %+v", rows)
	}
	if _, err := ReadSweepRows(strings.NewReader("{not json}")); err == nil {
		t.Fatal("malformed row must fail")
	}
}

func TestSummarizeSweepAggregates(t *testing.T) {
	rows := []fl.SweepRow{
		sweepRow("pgd", false, 0, 0.2, 0.8),
		sweepRow("pgd", true, 0, 0.9, 0.8),
		sweepRow("fgsm", false, 0.8, 0.4, 0.6),
		sweepRow("fgsm", true, 0.8, 0.8, 0.6),
		sweepRow("none", false, 0, 1, 0.9),
	}
	s := SummarizeSweep(rows)
	if s.Cells != 5 {
		t.Fatalf("cells = %d", s.Cells)
	}
	if len(s.Attacks) != 2 {
		t.Fatalf("attack lines = %+v (probe-less rows must not appear)", s.Attacks)
	}
	// Sorted by name: fgsm first.
	if s.Attacks[0].Attack != "fgsm" || s.Attacks[1].Attack != "pgd" {
		t.Fatalf("attack order = %+v", s.Attacks)
	}
	if d := s.Attacks[1].Delta(); d < 0.69 || d > 0.71 {
		t.Fatalf("pgd shield delta = %v, want 0.7", d)
	}
	if s.AccuracyIID == 0 || s.AccuracySkewed == 0 {
		t.Fatal("skew split missing")
	}
	out := s.Render()
	for _, want := range []string{"pgd", "fgsm", "5 cells", "skewed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
