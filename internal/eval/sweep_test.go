package eval

import (
	"strings"
	"testing"

	"pelta/internal/fl"
)

func sweepRow(attack string, shield bool, skew, robust, acc float64) fl.SweepRow {
	r := fl.SweepRow{
		SweepCell: fl.SweepCell{Clients: 3, Skew: skew, Shield: shield, Attack: attack},
		Rounds:    2, Seed: 1,
		FinalAccuracy: acc, RobustAccuracy: robust,
		Seconds: 0.5, RoundsPerSec: 4, Merged: 6,
	}
	if attack != "none" {
		r.ProbeSamples = 8
		r.Fooled = int((1 - robust) * 8)
	}
	return r
}

func TestReadSweepRowsRoundTrip(t *testing.T) {
	ndjson := `
{"clients":3,"skew":0,"shield":false,"attack":"pgd","poison_frac":0,"rounds":2,"seed":1,"final_accuracy":0.8,"robust_accuracy":0.25,"probe_samples":8,"fooled":6,"poison_effective":0,"down_bytes":10,"up_bytes":30,"seconds":0.4,"rounds_per_sec":5,"merged":6,"stale_merged":0,"duplicates":0,"rejected":0,"drops":0}

{"clients":3,"skew":0.8,"shield":true,"attack":"pgd","poison_frac":0,"rounds":2,"seed":1,"final_accuracy":0.7,"robust_accuracy":0.9,"probe_samples":8,"fooled":1,"poison_effective":0,"down_bytes":10,"up_bytes":30,"seconds":0.4,"rounds_per_sec":5,"merged":6,"stale_merged":1,"duplicates":0,"rejected":0,"drops":0}
`
	rows, err := ReadSweepRows(strings.NewReader(ndjson))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2 (blank lines must be skipped)", len(rows))
	}
	if rows[0].Attack != "pgd" || rows[1].Shield != true || rows[1].StaleMerged != 1 {
		t.Fatalf("rows decoded wrong: %+v", rows)
	}
	if _, err := ReadSweepRows(strings.NewReader("{not json}")); err == nil {
		t.Fatal("malformed row must fail")
	}
}

func TestSummarizeSweepAggregates(t *testing.T) {
	rows := []fl.SweepRow{
		sweepRow("pgd", false, 0, 0.2, 0.8),
		sweepRow("pgd", true, 0, 0.9, 0.8),
		sweepRow("fgsm", false, 0.8, 0.4, 0.6),
		sweepRow("fgsm", true, 0.8, 0.8, 0.6),
		sweepRow("none", false, 0, 1, 0.9),
	}
	s := SummarizeSweep(rows)
	if s.Cells != 5 {
		t.Fatalf("cells = %d", s.Cells)
	}
	if len(s.Attacks) != 2 {
		t.Fatalf("attack lines = %+v (probe-less rows must not appear)", s.Attacks)
	}
	// Sorted by name: fgsm first.
	if s.Attacks[0].Attack != "fgsm" || s.Attacks[1].Attack != "pgd" {
		t.Fatalf("attack order = %+v", s.Attacks)
	}
	if d := s.Attacks[1].Delta(); d < 0.69 || d > 0.71 {
		t.Fatalf("pgd shield delta = %v, want 0.7", d)
	}
	if s.AccuracyIID == 0 || s.AccuracySkewed == 0 {
		t.Fatal("skew split missing")
	}
	out := s.Render()
	for _, want := range []string{"pgd", "fgsm", "5 cells", "skewed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if s.DefenseTable != nil {
		t.Fatalf("defenseless, unpoisoned sweep grew a defense table: %+v", s.DefenseTable)
	}
}

func defenseRow(defense, poison string, frac, acc float64) fl.SweepRow {
	return fl.SweepRow{
		SweepCell: fl.SweepCell{
			Clients: 4, Attack: "none", PoisonFrac: frac, Poison: poison, Defense: defense,
		},
		Rounds: 2, Seed: 1, FinalAccuracy: acc, RobustAccuracy: 1,
		Seconds: 0.5, RoundsPerSec: 4, Merged: 8,
	}
}

// TestSummarizeSweepDefenseTable pins the defense × poisoning matrix: mean
// accuracy per (defense, strategy, fraction) and recovery relative to the
// same defense's clean cells.
func TestSummarizeSweepDefenseTable(t *testing.T) {
	rows := []fl.SweepRow{
		defenseRow("fedavg", "none", 0, 0.9),
		defenseRow("fedavg", "model-replacement", 0.25, 0.3),
		defenseRow("multikrum", "none", 0, 0.88),
		defenseRow("multikrum", "model-replacement", 0.25, 0.8),
		defenseRow("multikrum", "model-replacement", 0.25, 0.96), // second seed/cell, same setting
	}
	s := SummarizeSweep(rows)
	if len(s.DefenseTable) != 4 {
		t.Fatalf("defense table has %d lines, want 4: %+v", len(s.DefenseTable), s.DefenseTable)
	}
	find := func(def, poison string) SweepDefenseLine {
		for _, l := range s.DefenseTable {
			if l.Defense == def && l.Poison == poison {
				return l
			}
		}
		t.Fatalf("no line for %s/%s in %+v", def, poison, s.DefenseTable)
		return SweepDefenseLine{}
	}
	mk := find("multikrum", "model-replacement")
	if mk.Cells != 2 || mk.Accuracy != 0.88 {
		t.Fatalf("multikrum poisoned line = %+v, want mean 0.88 over 2 cells", mk)
	}
	if mk.Recovery < 0.99 || mk.Recovery > 1.01 {
		t.Fatalf("multikrum recovery = %v, want ≈1.0", mk.Recovery)
	}
	fa := find("fedavg", "model-replacement")
	if r := fa.Recovery; r < 0.32 || r > 0.34 {
		t.Fatalf("fedavg recovery = %v, want 0.3/0.9", r)
	}
	out := s.Render()
	for _, want := range []string{"defense robustness", "model-replacement@25%", "multikrum", "clean"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// TestSummarizeSweepLegacyRowsDefault: pre-defense NDJSON rows (no defense
// or poison fields) must normalize to fedavg/label-flip instead of forming
// phantom "" groups.
func TestSummarizeSweepLegacyRowsDefault(t *testing.T) {
	rows := []fl.SweepRow{
		{SweepCell: fl.SweepCell{Clients: 3, PoisonFrac: 0.5}, FinalAccuracy: 0.5, Rounds: 2},
		{SweepCell: fl.SweepCell{Clients: 3}, FinalAccuracy: 0.9, Rounds: 2},
	}
	s := SummarizeSweep(rows)
	if len(s.DefenseTable) != 2 {
		t.Fatalf("legacy rows gave %d lines, want 2: %+v", len(s.DefenseTable), s.DefenseTable)
	}
	for _, l := range s.DefenseTable {
		if l.Defense != "fedavg" {
			t.Fatalf("legacy defense %q, want fedavg", l.Defense)
		}
	}
	if s.DefenseTable[0].Poison != "label-flip" && s.DefenseTable[1].Poison != "label-flip" {
		t.Fatalf("legacy poisoned row lost its label-flip default: %+v", s.DefenseTable)
	}
}

// TestSummarizeSweepEmptyRows is the regression gate for `flsim -summarize`
// on an empty or fully filtered sweep file: every aggregation (including
// the exact-quantile throughput spread) must report cleanly instead of
// panicking in eval.Quantile's empty-slice guard.
func TestSummarizeSweepEmptyRows(t *testing.T) {
	for _, rows := range [][]fl.SweepRow{nil, {}} {
		s := SummarizeSweep(rows)
		if s.Cells != 0 || s.DefenseTable != nil || len(s.Attacks) != 0 {
			t.Fatalf("empty sweep summary = %+v", s)
		}
		out := s.Render()
		if !strings.Contains(out, "0 cells") {
			t.Fatalf("empty sweep render:\n%s", out)
		}
	}
	// An all-clean single-defense sweep exercises the empty *filtered* sets
	// (no poisoned rows, no probe rows) through the same path.
	s := SummarizeSweep([]fl.SweepRow{defenseRow("fedavg", "none", 0, 0.9)})
	if s.DefenseTable != nil {
		t.Fatalf("uninteresting sweep grew a table: %+v", s.DefenseTable)
	}
	_ = s.Render()
}
