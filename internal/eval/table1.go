package eval

import (
	"fmt"
	"strings"

	"pelta/internal/models"
)

// Table1Row is one model's enclave-cost line. The paper's Table I mixes two
// accounting conventions (the ViT rows include shield-region activations
// and gradients, the BiT rows are dominated by the stem kernel), so both
// are reported here: weights-only and the no-flush worst case.
type Table1Row struct {
	Model string
	// PortionWeights is shielded parameter bytes / total model bytes — the
	// fraction of the model that must live in the enclave permanently.
	PortionWeights float64
	// WeightBytes counts only the shielded parameters.
	WeightBytes int64
	// TEEBytes is the worst-case enclave memory of one gradient-producing
	// pass (weights + activations + gradients, nothing flushed).
	TEEBytes int64
}

// Table1 reproduces the enclave memory cost table for the paper-scale
// configurations at ImageNet dimensions, computed analytically (the full
// models would be 0.5-4 GB of fp32).
func Table1() []Table1Row {
	entries := []struct {
		name string
		fp   models.Footprint
	}{
		{models.ViTL16.Name, models.ViTL16.ShieldFootprint()},
		{models.ViTB16.Name, models.ViTB16.ShieldFootprint()},
		{models.BiTM101x3.Name, models.BiTM101x3.ShieldFootprint()},
		{models.BiTM152x4.Name, models.BiTM152x4.ShieldFootprint()},
	}
	rows := make([]Table1Row, 0, len(entries))
	for _, e := range entries {
		rows = append(rows, Table1Row{
			Model:          e.name,
			PortionWeights: float64(e.fp.WeightBytes) / float64(e.fp.TotalModelBytes),
			WeightBytes:    e.fp.WeightBytes,
			TEEBytes:       e.fp.TEEBytes(),
		})
	}
	return rows
}

// RenderTable1 prints the rows in the paper's layout plus the ensemble
// worst-case sum (ViT-L/16 + BiT-M-R101x3, enclaves not flushed between
// members, §V-A).
func RenderTable1(rows []Table1Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %18s %16s %22s\n", "Model", "Shielded portion", "Weights only", "TEE mem. (worst case)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %17.4g%% %16s %22s\n",
			r.Model, 100*r.PortionWeights, FormatBytes(r.WeightBytes), FormatBytes(r.TEEBytes))
	}
	// Ensemble worst case (§V-A): ViT-L/16 fully resident; the BiT stem is
	// spatially local, so its activations stream through the enclave in
	// tiles and only the kernel and its gradient stay resident.
	var ens int64
	for _, r := range rows {
		switch r.Model {
		case models.ViTL16.Name:
			ens += r.TEEBytes
		case models.BiTM101x3.Name:
			ens += 2 * r.WeightBytes
		}
	}
	fmt.Fprintf(&sb, "%-14s %18s %16s %22s\n", "Ensemble", "—", "—", FormatBytes(ens))
	return sb.String()
}

// FormatBytes renders a byte count with the units the paper uses.
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
