package eval

import (
	"fmt"
	"sort"
	"strings"

	"pelta/internal/attack"
	"pelta/internal/dataset"
	"pelta/internal/models"
	"pelta/internal/serve"
)

// DetectTraceConfig shapes a labeled detection trace: per-family probe
// streams recorded from real attack runs, interleaved with benign client
// streams drawn from the dataset.
type DetectTraceConfig struct {
	// Families names the attack families to record one probe stream each
	// for: "fgsm", "pgd", "apgd", "saga", "square".
	Families []string
	// ProbeQueries caps each probe stream's length (0 keeps every
	// recorded oracle query).
	ProbeQueries int
	// BenignClients × BenignQueries benign streams ride alongside, drawn
	// round-robin from the dataset.
	BenignClients int
	BenignQueries int
	// Eps / Step / Steps parameterize the recorded attacks (zero Step
	// defaults to Eps/8).
	Eps   float32
	Step  float32
	Steps int
	Seed  int64
}

// detectAttack instantiates one probe family against m's local copy.
func (c DetectTraceConfig) detectAttack(fi int, family string) (attack.Attack, error) {
	step := c.Step
	if step <= 0 {
		step = c.Eps / 8
	}
	switch strings.ToLower(family) {
	case "fgsm":
		return &attack.FGSM{Eps: c.Eps}, nil
	case "pgd":
		return &attack.PGD{Eps: c.Eps, Step: step, Steps: c.Steps}, nil
	case "apgd":
		return &attack.APGD{Eps: c.Eps, Steps: c.Steps, Rho: 0.75, Restarts: 1, Seed: c.Seed + int64(fi)}, nil
	case "saga":
		return &attack.SelfSAGA{SAGA: attack.SAGA{Eps: c.Eps, Step: step, Steps: c.Steps, AlphaK: 0.5}}, nil
	case "square":
		q := c.ProbeQueries
		if q <= 0 {
			q = c.Steps * 3
		}
		return &attack.Square{Eps: c.Eps, Queries: q, Seed: c.Seed + int64(fi)}, nil
	}
	return nil, fmt.Errorf("eval: unknown detect family %q (want fgsm, pgd, apgd, saga or square)", family)
}

// BuildDetectStreams assembles the labeled query streams of one detection
// run. Each attack family runs once against a recording oracle over the
// attacker's local model copy — every oracle query, forward or gradient,
// is one probe the service would have seen — and replays as one probe
// stream. Benign streams take dataset samples round-robin, one client per
// stream. The result is fully determined by (m, d, cfg): replaying it
// against a detector twice must yield identical verdicts.
func BuildDetectStreams(m models.Model, d *dataset.Dataset, cfg DetectTraceConfig) ([]serve.QueryStream, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("eval: detect trace needs a non-empty dataset")
	}
	var streams []serve.QueryStream
	for bi := 0; bi < cfg.BenignClients; bi++ {
		st := serve.QueryStream{
			Client: fmt.Sprintf("benign-%02d", bi),
			Family: "benign",
		}
		for qi := 0; qi < cfg.BenignQueries; qi++ {
			idx := (bi*cfg.BenignQueries + qi) % d.Len()
			st.Items = append(st.Items, serve.TrafficItem{
				X:     d.X.Slice(idx).Clone(),
				Label: d.Y[idx],
			})
		}
		streams = append(streams, st)
	}
	for fi, family := range cfg.Families {
		att, err := cfg.detectAttack(fi, family)
		if err != nil {
			return nil, err
		}
		rec := attack.Record(attack.NewClearOracle(m))
		idx := (cfg.BenignClients*cfg.BenignQueries + fi) % d.Len()
		x0 := d.X.SliceRange(idx, idx+1)
		y0 := []int{d.Y[idx]}
		if _, err := att.Perturb(rec, x0, y0); err != nil {
			return nil, fmt.Errorf("eval: recording %s probe run: %w", family, err)
		}
		queries := rec.Queries()
		if cfg.ProbeQueries > 0 && len(queries) > cfg.ProbeQueries {
			queries = queries[:cfg.ProbeQueries]
		}
		st := serve.QueryStream{
			Client: fmt.Sprintf("probe-%s", strings.ToLower(family)),
			Family: strings.ToLower(family),
			Probe:  true,
		}
		for _, q := range queries {
			st.Items = append(st.Items, serve.TrafficItem{X: q, Label: d.Y[idx], Adversarial: true})
		}
		streams = append(streams, st)
	}
	return streams, nil
}

// DetectFamilyLine is one row of the detection-quality table.
type DetectFamilyLine struct {
	Family  string
	Probe   bool
	Streams int
	Queries int
	Served  int
	Shed    int
	Flagged int
}

// Rate returns the line's flagged fraction. ok is false (and the rendered
// cell "n/a") with zero queries, so an empty family is distinguishable
// from one the detector missed entirely.
func (l DetectFamilyLine) Rate() (float64, bool) {
	if l.Queries == 0 {
		return 0, false
	}
	return float64(l.Flagged) / float64(l.Queries), true
}

// DetectSummary condenses a detection run into the quality question the
// issue asks: what fraction of each attack family's probe queries got
// flagged, at what benign false-positive cost.
type DetectSummary struct {
	Report *serve.DetectReport
	// Families holds one line per traffic family, benign first, then the
	// attack families in name order.
	Families []DetectFamilyLine
}

// SummarizeDetect groups a detection report's streams by family.
func SummarizeDetect(rep *serve.DetectReport) *DetectSummary {
	byFam := make(map[string]*DetectFamilyLine)
	var order []string
	for _, st := range rep.Streams {
		l := byFam[st.Family]
		if l == nil {
			l = &DetectFamilyLine{Family: st.Family, Probe: st.Probe}
			byFam[st.Family] = l
			order = append(order, st.Family)
		}
		l.Streams++
		l.Queries += st.Sent
		l.Served += st.Served
		l.Shed += st.Shed
		l.Flagged += st.Flagged
	}
	sort.Slice(order, func(a, b int) bool {
		la, lb := byFam[order[a]], byFam[order[b]]
		if la.Probe != lb.Probe {
			return !la.Probe // benign families first
		}
		return la.Family < lb.Family
	})
	s := &DetectSummary{Report: rep}
	for _, fam := range order {
		s.Families = append(s.Families, *byFam[fam])
	}
	return s
}

// rateCell renders a (value, ok) rate like the accuracy cells: "n/a" when
// the family had no queries.
func rateCell(v float64, ok bool) string {
	if !ok {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*v)
}

// Render prints the per-family detection table in the repo's plain-text
// report idiom, footed by the two headline numbers the acceptance gate
// reads: detection rate over probe queries and benign FPR.
func (s *DetectSummary) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s | %7s | %7s | %6s | %4s | %7s | %6s\n",
		"family", "streams", "queries", "served", "shed", "flagged", "rate")
	for _, l := range s.Families {
		r, ok := l.Rate()
		fmt.Fprintf(&sb, "%-8s | %7d | %7d | %6d | %4d | %7d | %6s\n",
			l.Family, l.Streams, l.Queries, l.Served, l.Shed, l.Flagged, rateCell(r, ok))
	}
	det, detOK := s.Report.DetectionRate()
	fpr, fprOK := s.Report.BenignFPR()
	fmt.Fprintf(&sb, "detection rate (probe queries): %s\n", rateCell(det, detOK))
	fmt.Fprintf(&sb, "benign FPR:                     %s\n", rateCell(fpr, fprOK))
	return sb.String()
}
