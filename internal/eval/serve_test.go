package eval

import (
	"strings"
	"testing"
	"time"

	"pelta/internal/serve"
)

// TestServeLoadSummaryZeroServedRendersNA pins the accuracy bugfix at the
// rendering layer: a stream that was entirely shed must read "n/a", not a
// fake "0.0%".
func TestServeLoadSummaryZeroServedRendersNA(t *testing.T) {
	rep := &serve.LoadReport{
		Sent: 10, Shed: 10,
		BenignSent: 6, BenignShed: 6,
		AdvSent: 4, AdvShed: 4,
		OfferedRate: 100, Seconds: 1,
	}
	out := SummarizeServeLoad(rep).Render()
	if !strings.Contains(out, "accuracy n/a") {
		t.Fatalf("zero-served render lacks n/a:\n%s", out)
	}
	if strings.Contains(out, "0.0%") {
		t.Fatalf("zero-served render shows a fake 0.0%%:\n%s", out)
	}

	// A genuine 0% stays a percentage.
	rep.BenignServed, rep.BenignCorrect, rep.BenignShed = 6, 0, 0
	out = SummarizeServeLoad(rep).Render()
	if !strings.Contains(out, "accuracy 0.0%") {
		t.Fatalf("genuine 0%% lost:\n%s", out)
	}
}

// TestServePhasesSummaryRender checks the per-phase table carries the
// per-route shed split and per-phase tail latency.
func TestServePhasesSummaryRender(t *testing.T) {
	prep := &serve.PhasedReport{
		Phases: []serve.PhaseReport{
			{
				Phase: serve.LoadPhase{Rate: 200, Duration: 2 * time.Second, AdvFrac: 0.1},
				LoadReport: serve.LoadReport{
					Sent: 400, Served: 400, BenignSent: 360, BenignServed: 360, BenignCorrect: 324,
					AdvSent: 40, AdvServed: 40, LatenciesMs: []float64{1, 2, 3}, Seconds: 2,
				},
			},
			{
				Phase: serve.LoadPhase{Rate: 800, Duration: time.Second, AdvFrac: 0.5},
				LoadReport: serve.LoadReport{
					Sent: 800, Served: 500, Shed: 300, BenignSent: 400, BenignServed: 390,
					BenignCorrect: 350, BenignShed: 10, AdvSent: 400, AdvServed: 110,
					AdvShed: 290, LatenciesMs: []float64{5, 9, 40}, Seconds: 1.2,
				},
			},
			{
				// A fully shed phase: its p95 cell must read n/a, not 0.0.
				Phase: serve.LoadPhase{Rate: 900, Duration: time.Second, AdvFrac: 1},
				LoadReport: serve.LoadReport{
					Sent: 900, Shed: 900, AdvSent: 900, AdvShed: 900, Seconds: 1,
				},
			},
		},
	}
	for _, p := range prep.Phases {
		prep.Total.Sent += p.Sent
		prep.Total.Served += p.Served
		prep.Total.Shed += p.Shed
		prep.Total.BenignSent += p.BenignSent
		prep.Total.BenignServed += p.BenignServed
		prep.Total.BenignCorrect += p.BenignCorrect
		prep.Total.BenignShed += p.BenignShed
		prep.Total.AdvSent += p.AdvSent
		prep.Total.AdvServed += p.AdvServed
		prep.Total.AdvShed += p.AdvShed
		prep.Total.LatenciesMs = append(prep.Total.LatenciesMs, p.LatenciesMs...)
	}
	sum := SummarizeServePhases(prep)
	if len(sum.PhaseLatency) != 3 {
		t.Fatalf("phase latency rows %d", len(sum.PhaseLatency))
	}
	if sum.PhaseLatency[1].P95 <= sum.PhaseLatency[0].P95 {
		t.Fatalf("burst-phase p95 %.1f not above calm-phase %.1f",
			sum.PhaseLatency[1].P95, sum.PhaseLatency[0].P95)
	}
	out := sum.Render()
	for _, want := range []string{"phased load: 3 phases", "benign shed", "adv shed", "290", "robust accuracy", "n/a"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render lacks %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "0.0\n") {
		t.Fatalf("fully shed phase renders a fake 0.0 p95:\n%s", out)
	}
}
