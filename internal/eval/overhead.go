package eval

import (
	"fmt"
	"strings"
	"time"

	"pelta/internal/core"
	"pelta/internal/models"
	"pelta/internal/tensor"
)

// OverheadReport quantifies the §VI system implications for one defender:
// world switches and secure-channel traffic per shielded inference, the
// modelled TEE overhead, and the measured wall-clock cost relative to a
// clear forward pass.
type OverheadReport struct {
	Model                string
	SwitchesPerPass      int64
	BytesPerPass         int64
	ModelledOverheadPass time.Duration
	ClearPass            time.Duration
	ShieldedPass         time.Duration
}

// MeasureOverhead runs `passes` single-sample inferences in both regimes.
func MeasureOverhead(m models.Model, passes int) (*OverheadReport, error) {
	if passes < 1 {
		passes = 1
	}
	shape := append([]int{1}, m.InputShape()...)
	x := tensor.New(shape...)

	start := time.Now()
	for i := 0; i < passes; i++ {
		models.Logits(m, x)
	}
	clearPer := time.Since(start) / time.Duration(passes)

	sm, err := core.NewShieldedModel(m, 0)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	for i := 0; i < passes; i++ {
		if _, err := sm.Query(x, nil); err != nil {
			return nil, err
		}
	}
	shieldedPer := time.Since(start) / time.Duration(passes)

	met := sm.Enclave().Metrics()
	return &OverheadReport{
		Model:                m.Name(),
		SwitchesPerPass:      met.WorldSwitches / int64(passes),
		BytesPerPass:         met.BytesIn / int64(passes),
		ModelledOverheadPass: met.SimulatedOverhead / time.Duration(passes),
		ClearPass:            clearPer,
		ShieldedPass:         shieldedPer,
	}, nil
}

// RenderOverhead prints the §VI table.
func RenderOverhead(rows []*OverheadReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %10s %12s %14s %12s %12s\n",
		"Model", "switches", "bytes/pass", "TEE overhead", "clear pass", "shielded")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-16s %10d %12s %14v %12v %12v\n",
			r.Model, r.SwitchesPerPass, FormatBytes(r.BytesPerPass),
			r.ModelledOverheadPass.Round(time.Microsecond),
			r.ClearPass.Round(10*time.Microsecond),
			r.ShieldedPass.Round(10*time.Microsecond))
	}
	return sb.String()
}
