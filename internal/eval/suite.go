package eval

import (
	"fmt"

	"pelta/internal/dataset"
	"pelta/internal/models"
	"pelta/internal/tensor"
)

// Block is one dataset block of the evaluation: the trained defenders of
// §V-A1/2 plus the validation data. The models are scaled-down variants
// carrying the paper's architecture names (see DESIGN.md §1: attacks act on
// the computational-graph structure, which the variants preserve).
type Block struct {
	Name      string
	Train     *dataset.Dataset
	Val       *dataset.Dataset
	Defenders []models.Model
	// ViT and BiT are the ensemble members of §V-A2.
	ViT *models.ViT
	BiT *models.BiT
}

// BlockConfig controls how a block is built.
type BlockConfig struct {
	Dataset dataset.Config
	Train   models.TrainConfig
	// EvalN is the number of astuteness samples (1000 in the paper).
	EvalN int
	// AllDefenders includes every §V-A1 model; otherwise only the ensemble
	// pair is trained (enough for Table IV and quick runs).
	AllDefenders bool
	Seed         int64
}

// QuickBlockConfig returns a configuration sized for seconds-scale runs:
// 16×16 images and a few hundred training samples.
func QuickBlockConfig(ds dataset.Config) BlockConfig {
	ds.HW = 16
	if ds.Classes > 20 {
		ds.Classes = 20 // scaled-down class count, documented in EXPERIMENTS.md
	}
	ds.TrainN, ds.ValN = 800, 240
	return BlockConfig{
		Dataset: ds,
		Train:   models.TrainConfig{Epochs: 5, BatchSize: 32, LR: 2e-3, Seed: 1},
		EvalN:   32,
		Seed:    1,
	}
}

// BuildBlock generates the data and trains the defenders.
func BuildBlock(cfg BlockConfig) (*Block, error) {
	train, val := dataset.Generate(cfg.Dataset)
	hw, classes := cfg.Dataset.HW, cfg.Dataset.Classes
	rng := tensor.NewRNG(cfg.Seed)

	vitL := models.NewViT(models.ViTConfig{
		Name: "ViT-L/16", InputC: 3, InputHW: hw, Patch: hw / 4,
		Dim: 64, Depth: 6, Heads: 4, MLPDim: 128, Classes: classes,
	}, rng)
	bit := models.NewBiT(models.BiTConfig{
		Name: "BiT-M-R101x3", InputC: 3, InputHW: hw, StemK: 3, StemStride: 1,
		StageBlocks: []int{1, 1, 1}, BaseWidth: 16, WidthFactor: 1, Groups: 4, Classes: classes,
	}, rng)

	b := &Block{Name: cfg.Dataset.Name, Train: train, Val: val, ViT: vitL, BiT: bit}
	b.Defenders = []models.Model{vitL, bit}
	if cfg.AllDefenders {
		vitB16 := models.NewViT(models.ViTConfig{
			Name: "ViT-B/16", InputC: 3, InputHW: hw, Patch: hw / 4,
			Dim: 48, Depth: 4, Heads: 4, MLPDim: 96, Classes: classes,
		}, rng)
		vitB32 := models.NewViT(models.ViTConfig{
			Name: "ViT-B/32", InputC: 3, InputHW: hw, Patch: hw / 2,
			Dim: 48, Depth: 4, Heads: 4, MLPDim: 96, Classes: classes,
		}, rng)
		rn56 := models.NewResNet(models.ResNetConfig{
			Name: "ResNet-56", InputC: 3, InputHW: hw,
			Widths: [3]int{8, 16, 32}, BlocksPerStep: 2, Classes: classes,
		}, rng)
		rn164 := models.NewResNet(models.ResNetConfig{
			Name: "ResNet-164", InputC: 3, InputHW: hw,
			Widths: [3]int{16, 32, 64}, BlocksPerStep: 2, Bottleneck: true, Classes: classes,
		}, rng)
		b.Defenders = []models.Model{vitL, vitB16, vitB32, rn56, rn164, bit}
	}
	for _, m := range b.Defenders {
		if _, err := models.Train(m, train.X, train.Y, cfg.Train); err != nil {
			return nil, fmt.Errorf("eval: training %s: %w", m.Name(), err)
		}
		if acc := models.Accuracy(m, val.X, val.Y); acc < 1.5/float64(classes) {
			return nil, fmt.Errorf("eval: %s failed to train (val accuracy %.2f)", m.Name(), acc)
		}
	}
	return b, nil
}
