package eval

import (
	"strings"
	"testing"

	"pelta/internal/dataset"
	"pelta/internal/detect"
	"pelta/internal/models"
	"pelta/internal/serve"
	"pelta/internal/tensor"
)

// detectStubReplica answers fixed logits: detection quality is about the
// query stream, not the answers.
type detectStubReplica struct{ shape []int }

func (r *detectStubReplica) Classes() int      { return 10 }
func (r *detectStubReplica) InputShape() []int { return r.shape }
func (r *detectStubReplica) Logits(x *tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.New(x.Dim(0), 10), nil
}

// detectService builds a detection-enabled service over n stub replicas.
func detectService(t *testing.T, shape []int, n, maxBatch int) *serve.Service {
	t.Helper()
	pool, err := serve.NewReplicaPool(n, func(int) (serve.Replica, error) {
		return &detectStubReplica{shape: shape}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return serve.NewService(pool, serve.Config{
		MaxBatch: maxBatch,
		Detect:   &serve.DetectConfig{Action: serve.DetectLog},
	})
}

// goldenStreams builds the seeded ~200-query golden trace: benign clients
// drawn from synthetic CIFAR plus one recorded APGD run.
func goldenStreams(t *testing.T) []serve.QueryStream {
	t.Helper()
	m := models.NewViT(models.SmallViT("vit-detect", 10, 16, 4), tensor.NewRNG(1))
	d, _ := dataset.Generate(dataset.Config{
		Name: "detect-golden", Classes: 10, HW: 16,
		TrainN: 140, ValN: 1, Seed: 7, Noise: 0.06, Waves: 3,
	})
	streams, err := BuildDetectStreams(m, d, DetectTraceConfig{
		Families:      []string{"apgd"},
		ProbeQueries:  96,
		BenignClients: 8,
		BenignQueries: 13,
		Eps:           0.1,
		Steps:         94,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return streams
}

// TestDetectGoldenTrace is the detection-quality gate: on the seeded
// benign+APGD trace the detector must flag at least 90% of the probe
// queries while false-positive-flagging at most 5% of the benign ones —
// and the rendered per-family table must be bit-identical across two runs
// with different replica and batch configurations.
func TestDetectGoldenTrace(t *testing.T) {
	streams := goldenStreams(t)
	var total int
	for _, st := range streams {
		total += len(st.Items)
	}
	if total < 190 || total > 210 {
		t.Fatalf("golden trace has %d queries, want ~200", total)
	}

	render := make([]string, 2)
	for run, setup := range []struct{ replicas, maxBatch int }{{1, 4}, {4, 2}} {
		s := detectService(t, []int{3, 16, 16}, setup.replicas, setup.maxBatch)
		rep, err := serve.RunDetectLoad(s, streams, serve.DetectLoadConfig{})
		s.Close()
		if err != nil {
			t.Fatal(err)
		}
		sum := SummarizeDetect(rep)
		render[run] = sum.Render()

		det, ok := rep.DetectionRate()
		if !ok || det < 0.90 {
			t.Fatalf("run %d: detection rate %.3f (ok=%v), want >= 0.90\n%s", run, det, ok, render[run])
		}
		fpr, ok := rep.BenignFPR()
		if !ok || fpr > 0.05 {
			t.Fatalf("run %d: benign FPR %.3f (ok=%v), want <= 0.05\n%s", run, fpr, ok, render[run])
		}
	}
	if render[0] != render[1] {
		t.Fatalf("detection table differs across service configurations:\n--- run 0 ---\n%s--- run 1 ---\n%s", render[0], render[1])
	}
}

// TestSummarizeDetectEmpty pins the empty-trace rendering convention: no
// queries renders "n/a", never 0%.
func TestSummarizeDetectEmpty(t *testing.T) {
	out := SummarizeDetect(&serve.DetectReport{}).Render()
	if !strings.Contains(out, "detection rate (probe queries): n/a") ||
		!strings.Contains(out, "benign FPR:                     n/a") {
		t.Fatalf("empty report must render n/a rates, got:\n%s", out)
	}
	if strings.Contains(out, "0.0%") {
		t.Fatalf("empty report must not render 0%% rates, got:\n%s", out)
	}
}

// TestSummarizeDetectTable pins the family grouping and rendering on a
// hand-built report: benign rows first, probe families in name order,
// per-line rates, and zero-query families as n/a.
func TestSummarizeDetectTable(t *testing.T) {
	rep := &serve.DetectReport{Streams: []serve.StreamReport{
		{Client: "p1", Family: "pgd", Probe: true, Sent: 10, Served: 10, Flagged: 9},
		{Client: "b1", Family: "benign", Sent: 20, Served: 20, Flagged: 1},
		{Client: "a1", Family: "apgd", Probe: true, Sent: 10, Served: 8, Shed: 2, Flagged: 8},
		{Client: "b2", Family: "benign", Sent: 20, Served: 20, Flagged: 0},
		{Client: "f1", Family: "fgsm", Probe: true},
	}}
	s := SummarizeDetect(rep)
	got := make([]string, len(s.Families))
	for i, l := range s.Families {
		got[i] = l.Family
	}
	want := []string{"benign", "apgd", "fgsm", "pgd"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("family order %v, want %v", got, want)
		}
	}
	if s.Families[0].Streams != 2 || s.Families[0].Queries != 40 || s.Families[0].Flagged != 1 {
		t.Fatalf("benign line aggregates wrong: %+v", s.Families[0])
	}
	out := s.Render()
	for _, want := range []string{
		"pgd      |       1 |      10 |     10 |    0 |       9 |  90.0%",
		"fgsm     |       1 |       0 |      0 |    0 |       0 |    n/a",
		"detection rate (probe queries): 85.0%",
		"benign FPR:                     2.5%",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

// TestBuildDetectStreamsFamilies checks every supported family records a
// non-empty probe stream (and unknown names error).
func TestBuildDetectStreamsFamilies(t *testing.T) {
	m := models.NewViT(models.SmallViT("vit-fams", 10, 16, 4), tensor.NewRNG(2))
	d, _ := dataset.Generate(dataset.Config{
		Name: "detect-fams", Classes: 10, HW: 16,
		TrainN: 20, ValN: 1, Seed: 9, Noise: 0.06, Waves: 3,
	})
	streams, err := BuildDetectStreams(m, d, DetectTraceConfig{
		Families:      []string{"fgsm", "pgd", "apgd", "saga", "square"},
		ProbeQueries:  12,
		BenignClients: 1,
		BenignQueries: 2,
		Eps:           0.05,
		Steps:         4,
		Seed:          11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) != 6 {
		t.Fatalf("%d streams, want 1 benign + 5 probe", len(streams))
	}
	for _, st := range streams[1:] {
		if !st.Probe || len(st.Items) == 0 {
			t.Fatalf("family %s: probe=%v with %d items", st.Family, st.Probe, len(st.Items))
		}
		if len(st.Items) > 12 {
			t.Fatalf("family %s: %d items, cap is 12", st.Family, len(st.Items))
		}
	}
	if _, err := BuildDetectStreams(m, d, DetectTraceConfig{Families: []string{"nope"}, Eps: 0.05, Steps: 2}); err == nil {
		t.Fatal("unknown family must error")
	}
	// FGSM is single-query and therefore undetectable by design: the
	// honest table row, not a bug.
	if n := len(streams[1].Items); n != 1 {
		t.Fatalf("fgsm recorded %d queries, want 1", n)
	}
	_ = detect.Config{} // the harness scores the serve-embedded detector
}
