// Package eval implements the paper's evaluation protocol (§V): astuteness
// (robust accuracy) over correctly classified samples, the attack × defense
// matrix of Table III, the SAGA-vs-ensemble grid of Table IV, the Fig. 3
// trajectory study and the Fig. 4 perturbation dumps, plus plain-text table
// renderers shaped like the paper's tables.
//
// The harness also consumes the FL-scale scenario sweeps of cmd/flsim:
// ReadSweepRows decodes the NDJSON rows a sweep emits and SummarizeSweep
// condenses them into per-attack shield deltas, IID-vs-skewed accuracy and
// engine throughput. Quantiles is the exact sorted-slice p50/p95/p99 shared
// by the sweep summaries and (as the validation reference for the P²
// streaming sketches) the internal/serve metrics; SummarizeServeLoad
// renders a serving load-generator run the same way the sweep summaries
// render a federation matrix, and SummarizeServePhases renders a phased
// burst trace as a per-phase, per-route shed/latency table (zero-served
// accuracies read "n/a", never a fake 0%).
//
// The detection-quality harness scores the serving layer's stateful probe
// detector: BuildDetectStreams records real attack runs (fgsm, pgd, apgd,
// saga, square) through attack.RecordingOracle — every oracle query is one
// probe the service would have seen — and interleaves them with benign
// client streams; SummarizeDetect condenses the replayed serve.DetectReport
// into the per-family detection-rate vs benign-FPR table (empty families
// render "n/a", following the same convention).
//
// The trace summaries consume the observability layer's span records:
// SummarizeTrace condenses obs.SpanRecords into a per-route × per-stage
// latency table (p50/p95/mean per stage plus each stage's share of the
// end-to-end mean — the five stages partition the span exactly, so the
// shares sum to 100%), with per-kernel attribution and a shed/flag
// causality table keyed by outcome; ValidateSpans is the structural gate
// the CI trace smoke cell relies on (negative stage durations, stage sums
// drifting from the end-to-end span, served spans missing lifecycle
// offsets all fail); SummarizeRoundSpans renders FL round-phase spans as
// the train/transport/aggregate/broadcast breakdown line cmd/flsim
// prints. Evaluation is deterministic
// given an AttackSet seed; batch fan-out across oracle workers
// (SetOracleWorkers) never changes results, only wall time.
package eval
