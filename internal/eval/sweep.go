package eval

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"pelta/internal/fl"
)

// ReadSweepRows decodes the newline-delimited JSON rows a cmd/flsim sweep
// emits. Blank lines are skipped; any malformed line aborts with its line
// number so a truncated sweep file is caught early.
func ReadSweepRows(r io.Reader) ([]fl.SweepRow, error) {
	var rows []fl.SweepRow
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var row fl.SweepRow
		if err := json.Unmarshal([]byte(text), &row); err != nil {
			return nil, fmt.Errorf("eval: sweep row %d: %w", line, err)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("eval: reading sweep rows: %w", err)
	}
	return rows, nil
}

// SweepAttackLine aggregates every probed cell of one attack: mean robust
// accuracy with the shield off and on, i.e. the FL-scale analogue of one
// Table III row measured inside the live federation instead of on a frozen
// defender.
type SweepAttackLine struct {
	Attack        string
	CellsClear    int
	CellsShielded int
	RobustClear   float64
	RobustShield  float64
}

// Delta returns the shield's robust-accuracy gain for this attack.
func (l SweepAttackLine) Delta() float64 { return l.RobustShield - l.RobustClear }

// SweepDefenseLine is one entry of the defense × poisoning robustness
// table: the mean final accuracy of every cell sharing an aggregation
// defense and a poisoning setting, plus how much of the same defense's
// clean-federation accuracy that preserves.
type SweepDefenseLine struct {
	Defense string
	// Poison is the strategy ("none" for the clean baseline cells).
	Poison string
	Frac   float64
	Cells  int
	// Accuracy is the mean final accuracy across the matching cells.
	Accuracy float64
	// Recovery is Accuracy over the same defense's clean (Frac == 0)
	// accuracy — the ≥ 0.8 acceptance bar of a working defense. Zero when
	// the sweep has no clean cells for this defense.
	Recovery float64
}

// SweepSummary condenses a sweep into the questions the ROADMAP's
// traffic-scale simulation asks: does the shield still blunt each probe
// attack across fleet sizes and data skews, what does poisoning do to the
// global model (and which aggregation defense contains it), and how fast
// did the engine aggregate.
type SweepSummary struct {
	Cells   int
	Rounds  int
	Attacks []SweepAttackLine
	// AccuracyIID / AccuracySkewed average the global model's final
	// accuracy over cells with skew == 0 and skew > 0.
	AccuracyIID    float64
	AccuracySkewed float64
	// PoisonEffClear / PoisonEffShield average effective poison samples per
	// poisoned cell with the shield off and on.
	PoisonEffClear  float64
	PoisonEffShield float64
	// DefenseTable is the defense × poisoning robustness matrix, present
	// when the sweep exercised poisoning or a non-default defense. Lines
	// are sorted by defense, then poison strategy, then fraction.
	DefenseTable []SweepDefenseLine
	// MeanRoundsPerSec is the engine's aggregation throughput averaged
	// over cells; RoundThroughput spreads it into p50/p95/p99 across cells
	// so one slow straggler cell is visible next to the mean; TotalSeconds
	// is the whole sweep's simulated wall time.
	MeanRoundsPerSec float64
	RoundThroughput  Q
	TotalSeconds     float64
}

// SummarizeSweep aggregates sweep rows. Rows that ran no probe
// (ProbeSamples == 0) contribute to the accuracy and throughput statistics
// but not to the attack lines.
func SummarizeSweep(rows []fl.SweepRow) *SweepSummary {
	s := &SweepSummary{Cells: len(rows)}
	type acc struct {
		clearSum, shieldSum float64
		nClear, nShield     int
	}
	byAttack := make(map[string]*acc)
	rps := make([]float64, 0, len(rows))
	var accIID, accSkew float64
	var nIID, nSkew int
	var poisonClear, poisonShield float64
	var nPoisonClear, nPoisonShield int
	for _, r := range rows {
		s.Rounds += r.Rounds
		s.TotalSeconds += r.Seconds
		s.MeanRoundsPerSec += r.RoundsPerSec
		rps = append(rps, r.RoundsPerSec)
		if r.Skew > 0 {
			accSkew += r.FinalAccuracy
			nSkew++
		} else {
			accIID += r.FinalAccuracy
			nIID++
		}
		if r.PoisonFrac > 0 {
			if r.Shield {
				poisonShield += float64(r.PoisonEff)
				nPoisonShield++
			} else {
				poisonClear += float64(r.PoisonEff)
				nPoisonClear++
			}
		}
		if r.ProbeSamples == 0 {
			continue
		}
		a := byAttack[r.Attack]
		if a == nil {
			a = &acc{}
			byAttack[r.Attack] = a
		}
		if r.Shield {
			a.shieldSum += r.RobustAccuracy
			a.nShield++
		} else {
			a.clearSum += r.RobustAccuracy
			a.nClear++
		}
	}
	if len(rows) > 0 {
		s.MeanRoundsPerSec /= float64(len(rows))
		s.RoundThroughput = Quantiles(rps)
	}
	if nIID > 0 {
		s.AccuracyIID = accIID / float64(nIID)
	}
	if nSkew > 0 {
		s.AccuracySkewed = accSkew / float64(nSkew)
	}
	if nPoisonClear > 0 {
		s.PoisonEffClear = poisonClear / float64(nPoisonClear)
	}
	if nPoisonShield > 0 {
		s.PoisonEffShield = poisonShield / float64(nPoisonShield)
	}
	names := make([]string, 0, len(byAttack))
	for name := range byAttack {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := byAttack[name]
		line := SweepAttackLine{Attack: name, CellsClear: a.nClear, CellsShielded: a.nShield}
		if a.nClear > 0 {
			line.RobustClear = a.clearSum / float64(a.nClear)
		}
		if a.nShield > 0 {
			line.RobustShield = a.shieldSum / float64(a.nShield)
		}
		s.Attacks = append(s.Attacks, line)
	}
	s.DefenseTable = defenseTable(rows)
	return s
}

// defenseKey normalizes a row's defense/poison fields: pre-defense rows
// carry empty strings that mean plain FedAvg and (when poisoned) the
// label-flip strategy.
func defenseKey(r fl.SweepRow) (defense, poison string) {
	defense = r.Defense
	if defense == "" {
		defense = "fedavg"
	}
	poison = r.Poison
	if r.PoisonFrac <= 0 {
		poison = "none"
	} else if poison == "" {
		poison = "label-flip"
	}
	return defense, poison
}

// defenseTable aggregates the defense × poisoning accuracy matrix. It
// returns nil for sweeps that never poisoned a cell and ran only the
// default defense — the table would be a single redundant number. All
// groupings guard against empty filtered row sets, so a sparse or
// truncated sweep file still summarizes cleanly.
func defenseTable(rows []fl.SweepRow) []SweepDefenseLine {
	type key struct {
		defense, poison string
		frac            float64
	}
	type acc struct {
		sum float64
		n   int
	}
	groups := make(map[key]*acc)
	clean := make(map[string]*acc)
	interesting := false
	for _, r := range rows {
		defense, poison := defenseKey(r)
		if r.PoisonFrac > 0 || (r.Defense != "" && r.Defense != "fedavg") {
			interesting = true
		}
		k := key{defense: defense, poison: poison, frac: r.PoisonFrac}
		g := groups[k]
		if g == nil {
			g = &acc{}
			groups[k] = g
		}
		g.sum += r.FinalAccuracy
		g.n++
		if r.PoisonFrac <= 0 {
			c := clean[defense]
			if c == nil {
				c = &acc{}
				clean[defense] = c
			}
			c.sum += r.FinalAccuracy
			c.n++
		}
	}
	if !interesting || len(groups) == 0 {
		return nil
	}
	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].defense != keys[b].defense {
			return keys[a].defense < keys[b].defense
		}
		if keys[a].poison != keys[b].poison {
			return keys[a].poison < keys[b].poison
		}
		return keys[a].frac < keys[b].frac
	})
	out := make([]SweepDefenseLine, 0, len(keys))
	for _, k := range keys {
		g := groups[k]
		line := SweepDefenseLine{
			Defense:  k.defense,
			Poison:   k.poison,
			Frac:     k.frac,
			Cells:    g.n,
			Accuracy: g.sum / float64(g.n),
		}
		if c := clean[k.defense]; c != nil && c.n > 0 && c.sum > 0 {
			line.Recovery = line.Accuracy / (c.sum / float64(c.n))
		}
		out = append(out, line)
	}
	return out
}

// Render prints the summary as a plain-text report in the repo's table
// idiom.
func (s *SweepSummary) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "sweep: %d cells, %d rounds, %.1fs simulated (%.2f rounds/s mean)\n",
		s.Cells, s.Rounds, s.TotalSeconds, s.MeanRoundsPerSec)
	if s.Cells > 0 {
		fmt.Fprintf(&sb, "round throughput across cells: %s rounds/s\n", s.RoundThroughput)
	}
	fmt.Fprintf(&sb, "global accuracy: %.1f%% IID", 100*s.AccuracyIID)
	if s.AccuracySkewed > 0 {
		fmt.Fprintf(&sb, ", %.1f%% skewed", 100*s.AccuracySkewed)
	}
	sb.WriteString("\n")
	if len(s.Attacks) > 0 {
		fmt.Fprintf(&sb, "%-8s %10s %10s %8s\n", "attack", "clear", "shielded", "Δ")
		pct := func(v float64, n int) string {
			if n == 0 {
				return "—"
			}
			return fmt.Sprintf("%.1f%%", 100*v)
		}
		for _, l := range s.Attacks {
			delta := "—"
			if l.CellsClear > 0 && l.CellsShielded > 0 {
				delta = fmt.Sprintf("%+.1f%%", 100*l.Delta())
			}
			fmt.Fprintf(&sb, "%-8s %10s %10s %8s\n",
				l.Attack, pct(l.RobustClear, l.CellsClear), pct(l.RobustShield, l.CellsShielded), delta)
		}
	}
	if s.PoisonEffClear > 0 || s.PoisonEffShield > 0 {
		fmt.Fprintf(&sb, "effective poison/cell: %.1f clear vs %.1f shielded\n",
			s.PoisonEffClear, s.PoisonEffShield)
	}
	if len(s.DefenseTable) > 0 {
		sb.WriteString(renderDefenseTable(s.DefenseTable))
	}
	return sb.String()
}

// renderDefenseTable pivots the defense lines into one row per defense and
// one column per poisoning setting, each cell "accuracy (recovery%)".
func renderDefenseTable(lines []SweepDefenseLine) string {
	colKey := func(l SweepDefenseLine) string {
		if l.Poison == "none" {
			return "clean"
		}
		return fmt.Sprintf("%s@%.0f%%", l.Poison, 100*l.Frac)
	}
	var defenses, cols []string
	seenDef := map[string]bool{}
	seenCol := map[string]bool{}
	cells := map[string]map[string]SweepDefenseLine{}
	for _, l := range lines {
		if !seenDef[l.Defense] {
			seenDef[l.Defense] = true
			defenses = append(defenses, l.Defense)
		}
		c := colKey(l)
		if !seenCol[c] {
			seenCol[c] = true
			cols = append(cols, c)
		}
		if cells[l.Defense] == nil {
			cells[l.Defense] = map[string]SweepDefenseLine{}
		}
		cells[l.Defense][c] = l
	}
	// Clean first, then the poisoned settings in line order (already sorted
	// by poison, frac).
	sort.SliceStable(cols, func(a, b int) bool { return cols[a] == "clean" && cols[b] != "clean" })

	width := 24
	var sb strings.Builder
	sb.WriteString("defense robustness under poisoning (mean final accuracy, % of same-defense clean):\n")
	fmt.Fprintf(&sb, "%-14s", "defense")
	for _, c := range cols {
		fmt.Fprintf(&sb, " %*s", width, c)
	}
	sb.WriteString("\n")
	for _, d := range defenses {
		fmt.Fprintf(&sb, "%-14s", d)
		for _, c := range cols {
			l, ok := cells[d][c]
			switch {
			case !ok:
				// The em dash is 3 bytes but 1 column; %*s pads by bytes.
				fmt.Fprintf(&sb, " %*s", width+2, "—")
			case c == "clean" || l.Recovery == 0:
				fmt.Fprintf(&sb, " %*s", width, fmt.Sprintf("%.1f%%", 100*l.Accuracy))
			default:
				fmt.Fprintf(&sb, " %*s", width, fmt.Sprintf("%.1f%% (%.0f%%)", 100*l.Accuracy, 100*l.Recovery))
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
