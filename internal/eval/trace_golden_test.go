package eval_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pelta/internal/eval"
	"pelta/internal/obs"
	"pelta/internal/serve"
	"pelta/internal/tensor"
)

// goldenClock is a manually advanced serve.Clock (a local copy of the
// internal test fake — the golden test lives outside package serve because
// eval cannot be imported from there).
type goldenClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*goldenTimer
}

type goldenTimer struct {
	gc   *goldenClock
	c    chan time.Time
	at   time.Time
	done bool
}

func newGoldenClock() *goldenClock { return &goldenClock{now: time.Unix(1000, 0)} }

func (g *goldenClock) Now() time.Time {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.now
}

func (g *goldenClock) NewTimer(d time.Duration) serve.Timer {
	g.mu.Lock()
	defer g.mu.Unlock()
	t := &goldenTimer{gc: g, c: make(chan time.Time, 1), at: g.now.Add(d)}
	g.timers = append(g.timers, t)
	return t
}

func (g *goldenClock) Advance(d time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.now = g.now.Add(d)
	for _, t := range g.timers {
		if !t.done && !t.at.After(g.now) {
			t.done = true
			t.c <- g.now
		}
	}
}

func (t *goldenTimer) C() <-chan time.Time { return t.c }

func (t *goldenTimer) Stop() bool {
	t.gc.mu.Lock()
	defer t.gc.mu.Unlock()
	if t.done {
		return false
	}
	t.done = true
	return true
}

// gateReplica blocks each batch on a token so the test controls exactly
// when the fake clock moves relative to each inference, then runs a real
// matmul so the kernel-boundary hook fires under whatever tensor
// parallelism is pinned.
type gateReplica struct {
	gate    chan struct{}
	serving atomic.Int32
	w       *tensor.Tensor
}

func newGateReplica() *gateReplica {
	w := tensor.New(4, 3)
	w.Fill(0.25)
	return &gateReplica{gate: make(chan struct{}), w: w}
}

func (r *gateReplica) Classes() int      { return 3 }
func (r *gateReplica) InputShape() []int { return []int{1, 2, 2} }

func (r *gateReplica) Logits(x *tensor.Tensor) (*tensor.Tensor, error) {
	r.serving.Add(1)
	<-r.gate
	return tensor.MatMul(x.Reshape(x.Dim(0), 4), r.w), nil
}

func waitCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// runGoldenTrace drives a seeded 3-phase load through a traced service on
// the fake clock with a fully scripted timeline: 6 requests (2 per phase)
// enqueue while the clock is frozen, then each inference is released after
// a 1ms advance. Every timestamp derives from the injected clock, so the
// resulting span set — and its summary — is a pure function of the script.
func runGoldenTrace(t *testing.T) ([]obs.SpanRecord, *eval.TraceSummary) {
	t.Helper()
	gc := newGoldenClock()
	rep := newGateReplica()
	pool, err := serve.NewReplicaPool(1, func(int) (serve.Replica, error) { return rep, nil })
	if err != nil {
		t.Fatal(err)
	}
	s := serve.NewService(pool, serve.Config{
		MaxBatch: 1, QueueDepth: 16, Clock: gc,
		Trace: &serve.TraceConfig{Sample: 1.0},
	})
	defer s.Close()

	x := tensor.New(1, 2, 2)
	x.Fill(0.5)
	items := []serve.TrafficItem{{X: x, Label: 2}}
	// Rate 2e9 truncates the pacing interval to 0: each phase's 2 shots
	// are due at the phase boundary, and the 1ns phases put all six shots
	// within 2ns of the frozen start.
	phases := []serve.LoadPhase{
		{Rate: 2e9, Duration: time.Nanosecond},
		{Rate: 2e9, Duration: time.Nanosecond},
		{Rate: 2e9, Duration: time.Nanosecond},
	}
	offered := func() uint64 {
		var n uint64
		for _, r := range s.Metrics().Snapshot().Routes {
			n += r.Offered
		}
		return n
	}

	done := make(chan error, 1)
	go func() {
		_, err := serve.RunLoadPhases(s, items, phases, serve.LoadConfig{Seed: 7})
		done <- err
	}()

	// Phase 1's shots submit on the frozen clock; the worker blocks on the
	// gate with the first of them.
	waitCond(t, func() bool { return rep.serving.Load() == 1 && offered() == 2 })
	// Fire the phase-2/3 pacing timers; all remaining shots enqueue at
	// exactly start+1µs while the worker is still gated.
	gc.Advance(time.Microsecond)
	waitCond(t, func() bool { return offered() == 6 })
	// Release the six inferences, advancing 1ms inside each infer stage.
	for i := 0; i < 6; i++ {
		gc.Advance(time.Millisecond)
		rep.gate <- struct{}{}
		if i < 5 {
			waitCond(t, func() bool { return rep.serving.Load() == int32(i+2) })
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	recs := s.Tracer().Records()
	return recs, eval.SummarizeTrace(recs)
}

// TestGoldenTraceDeterministic is the golden trace pin: the same seeded
// 3-phase load renders a byte-identical SummarizeTrace table across two
// runs AND across 1 vs 8 kernel workers, because every span timestamp
// reads the injected clock rather than the wall.
func TestGoldenTraceDeterministic(t *testing.T) {
	prev := tensor.SetKernelWorkers(1)
	defer tensor.SetKernelWorkers(prev)

	recs1, sum1 := runGoldenTrace(t)
	if err := eval.ValidateSpans(recs1); err != nil {
		t.Fatal(err)
	}
	tensor.SetKernelWorkers(8)
	recs2, sum2 := runGoldenTrace(t)
	if err := eval.ValidateSpans(recs2); err != nil {
		t.Fatal(err)
	}

	r1, r2 := sum1.Render(), sum2.Render()
	if r1 != r2 {
		t.Fatalf("trace table not reproducible across runs/kernel workers:\n--- 1 worker\n%s\n--- 8 workers\n%s", r1, r2)
	}
	if len(recs1) != 6 || sum1.Served != 6 {
		t.Fatalf("span set: %d spans, %d served, want 6/6:\n%s", len(recs1), sum1.Served, r1)
	}
	for i := range recs1 {
		if recs1[i].ID != recs2[i].ID || recs1[i].Outcome != recs2[i].Outcome {
			t.Fatalf("span %d diverged: %+v vs %+v", i, recs1[i], recs2[i])
		}
	}

	// The scripted timeline: queue residencies {0, 1.001, 2, 3, 4, 5}ms,
	// infer {1.001, 1, 1, 1, 1, 1}ms, so e2e p50 is 3.5ms and the stage
	// p50 columns must sum within 5% of it (here: exactly).
	route := sum1.Routes[0]
	if route.EndToEnd.P50 != 3.5 {
		t.Fatalf("e2e p50 %v ms, want 3.5:\n%s", route.EndToEnd.P50, r1)
	}
	var p50Sum, p95Sum float64
	for _, st := range route.Stages {
		p50Sum += st.P50Ms
		p95Sum += st.P95Ms
	}
	if diff := p50Sum - route.EndToEnd.P50; diff < -0.05*route.EndToEnd.P50 || diff > 0.05*route.EndToEnd.P50 {
		t.Fatalf("stage p50 sum %v vs e2e p50 %v: outside 5%%", p50Sum, route.EndToEnd.P50)
	}
	if diff := p95Sum - route.EndToEnd.P95; diff < -0.05*route.EndToEnd.P95 || diff > 0.05*route.EndToEnd.P95 {
		t.Fatalf("stage p95 sum %v vs e2e p95 %v: outside 5%%", p95Sum, route.EndToEnd.P95)
	}
}
