package eval

import (
	"testing"
	"testing/quick"

	"pelta/internal/models"
)

func TestMedian(t *testing.T) {
	tests := []struct {
		in   []float64
		want float64
	}{
		{[]float64{3}, 3},
		{[]float64{3, 1, 2}, 2},
		{[]float64{1, 0, 1}, 1},
		{[]float64{0.5, 0.9, 0.1, 0.7, 0.3}, 0.5},
	}
	for _, tt := range tests {
		if got := Median(append([]float64(nil), tt.in...)); got != tt.want {
			t.Errorf("Median(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestMedianBoundedProperty(t *testing.T) {
	f := func(a, b, c float64) bool {
		m := Median([]float64{a, b, c})
		lo, hi := a, a
		for _, v := range []float64{b, c} {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return m >= lo && m <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestResNetShieldFootprint(t *testing.T) {
	fp := models.ResNet56.ShieldFootprint(853_018) // CIFAR ResNet-56 param count
	if fp.WeightBytes <= 0 || fp.ActivationBytes <= 0 {
		t.Fatalf("footprint = %+v", fp)
	}
	// The ResNet stem shield is small relative to the model.
	if fp.Portion() > 0.5 {
		t.Fatalf("portion = %v, stem shield should be a small fraction", fp.Portion())
	}
	if fp.TEEBytes() != fp.WeightBytes+fp.ActivationBytes+fp.GradientBytes {
		t.Fatal("TEEBytes must sum the components")
	}
}
