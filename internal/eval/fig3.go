package eval

import (
	"fmt"
	"math"
	"strings"

	"pelta/internal/attack"
	"pelta/internal/tensor"
)

// Fig. 3 of the paper is a schematic of three maximum-allowable attacks
// inside the ε-ball, where only PGD crosses the decision boundary. This
// file regenerates it as data: a 2-D toy classifier with a curved (ring)
// boundary on which FGSM overshoots, PGD converges, and MIM's momentum
// carries it past the optimum.

// ring classifier: class 1 wins inside the annulus around radius 0.6.
const (
	ringRadius = 0.6
	ringSharp  = 20.0
	ringBias   = 0.5
)

// Toy2D is an analytic two-class model on R² implementing attack.Oracle.
// Inputs are [B,2,1,1] tensors (two "pixels").
type Toy2D struct{}

var _ attack.Oracle = (*Toy2D)(nil)

// Name implements attack.Oracle.
func (Toy2D) Name() string { return "toy-ring-2d" }

// InputShape implements attack.Oracle.
func (Toy2D) InputShape() []int { return []int{2, 1, 1} }

// Classes implements attack.Oracle.
func (Toy2D) Classes() int { return 2 }

func (Toy2D) logit1(x1, x2 float64) float64 {
	r := math.Hypot(x1, x2)
	d := r - ringRadius
	return ringBias - ringSharp*d*d
}

// Logits implements attack.Oracle.
func (t Toy2D) Logits(x *tensor.Tensor) (*tensor.Tensor, error) {
	b := x.Dim(0)
	out := tensor.New(b, 2)
	for i := 0; i < b; i++ {
		p := x.Slice(i).Data()
		out.Set(float32(t.logit1(float64(p[0]), float64(p[1]))), i, 1)
	}
	return out, nil
}

// GradCE implements attack.Oracle analytically.
func (t Toy2D) GradCE(x *tensor.Tensor, y []int) (*tensor.Tensor, []float64, error) {
	b := x.Dim(0)
	grad := tensor.New(x.Shape()...)
	per := make([]float64, b)
	for i := 0; i < b; i++ {
		p := x.Slice(i).Data()
		x1, x2 := float64(p[0]), float64(p[1])
		z1 := t.logit1(x1, x2)
		p1 := 1 / (1 + math.Exp(-z1))
		// dz1/dx = −2·sharp·(r−R)·x/r
		r := math.Hypot(x1, x2)
		if r < 1e-9 {
			r = 1e-9
		}
		k := -2 * ringSharp * (r - ringRadius) / r
		// d(−log p_y)/dx
		var scale float64
		if y[i] == 0 {
			per[i] = -math.Log(1 - p1 + 1e-12)
			scale = p1
		} else {
			per[i] = -math.Log(p1 + 1e-12)
			scale = -(1 - p1)
		}
		g := grad.Slice(i).Data()
		g[0] = float32(scale * k * x1)
		g[1] = float32(scale * k * x2)
	}
	return grad, per, nil
}

// GradCW implements attack.Oracle (unused by the Fig. 3 attacks).
func (t Toy2D) GradCW(x *tensor.Tensor, y []int, x0 *tensor.Tensor, kappa, c float32) (*tensor.Tensor, float64, error) {
	g, per, err := t.GradCE(x, y)
	if err != nil {
		return nil, 0, err
	}
	total := 0.0
	for _, l := range per {
		total += l
	}
	diff := tensor.Sub(x, x0)
	tensor.AddScaledIn(g, 2*c, diff)
	return g, total + float64(c)*tensor.Dot(diff, diff), nil
}

// trajectoryOracle records every gradient query's position.
type trajectoryOracle struct {
	attack.Oracle
	points [][2]float64
}

func (o *trajectoryOracle) GradCE(x *tensor.Tensor, y []int) (*tensor.Tensor, []float64, error) {
	p := x.Slice(0).Data()
	o.points = append(o.points, [2]float64{float64(p[0]), float64(p[1])})
	return o.Oracle.GradCE(x, y)
}

// Fig3Trajectory is the recorded path of one attack.
type Fig3Trajectory struct {
	Attack  string
	Points  [][2]float64 // gradient-query positions, then the final point
	Final   [2]float64
	Crossed bool // did the final point cross the decision boundary?
	LInf    float64
}

// Fig3Result holds the three trajectories.
type Fig3Result struct {
	Start [2]float64
	Eps   float64
	Paths []Fig3Trajectory
}

// RunFig3 reproduces the Fig. 3 geometry: FGSM, PGD and MIM from the same
// start point x0 with the same ε budget.
func RunFig3() (*Fig3Result, error) {
	start := [2]float64{0.30, 0.04}
	const eps = 0.45
	x0 := tensor.FromSlice([]float32{float32(start[0]), float32(start[1])}, 1, 2, 1, 1)
	y := []int{0}

	attacks := []attack.Attack{
		&attack.FGSM{Eps: eps},
		&attack.PGD{Eps: eps, Step: eps / 10, Steps: 20},
		&attack.MIM{Eps: eps, Step: eps / 4, Steps: 20, Mu: 1},
	}
	res := &Fig3Result{Start: start, Eps: eps}
	toy := Toy2D{}
	for _, atk := range attacks {
		rec := &trajectoryOracle{Oracle: toy}
		xadv, err := atk.Perturb(rec, x0, y)
		if err != nil {
			return nil, fmt.Errorf("eval: fig3 %s: %w", atk.Name(), err)
		}
		p := xadv.Slice(0).Data()
		final := [2]float64{float64(p[0]), float64(p[1])}
		traj := Fig3Trajectory{
			Attack:  atk.Name(),
			Points:  append(rec.points, final),
			Final:   final,
			Crossed: toy.logit1(final[0], final[1]) > 0,
			LInf:    math.Max(math.Abs(final[0]-start[0]), math.Abs(final[1]-start[1])),
		}
		res.Paths = append(res.Paths, traj)
	}
	return res, nil
}

// Render prints the trajectories and the boundary-crossing verdicts.
func (r *Fig3Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig. 3 — maximum-allowable attacks inside the l∞ ball (ε=%.2f) from x0=(%.2f, %.2f)\n",
		r.Eps, r.Start[0], r.Start[1])
	fmt.Fprintf(&sb, "decision boundary: ring of radius %.2f (class 1 inside the annulus)\n", ringRadius)
	for _, p := range r.Paths {
		verdict := "FAILED to cross"
		if p.Crossed {
			verdict = "crossed the boundary (adversarial example found)"
		}
		fmt.Fprintf(&sb, "%-5s %2d queries, final (%+.3f, %+.3f), l∞=%.3f — %s\n",
			p.Attack, len(p.Points)-1, p.Final[0], p.Final[1], p.LInf, verdict)
	}
	return sb.String()
}
