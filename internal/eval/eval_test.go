package eval

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"pelta/internal/dataset"
	"pelta/internal/models"
	"pelta/internal/tensor"
)

var (
	blockOnce sync.Once
	blockVal  *Block
	blockErr  error
)

// quickBlock trains the ensemble pair once for all eval tests.
func quickBlock(t *testing.T) *Block {
	t.Helper()
	if testing.Short() {
		t.Skip("paper-reproduction eval suite skipped in -short mode")
	}
	blockOnce.Do(func() {
		cfg := QuickBlockConfig(dataset.SynthCIFAR10(16, 61))
		cfg.Dataset.Classes = 6
		cfg.Dataset.TrainN, cfg.Dataset.ValN = 400, 150
		cfg.EvalN = 16
		blockVal, blockErr = BuildBlock(cfg)
	})
	if blockErr != nil {
		t.Fatalf("BuildBlock: %v", blockErr)
	}
	return blockVal
}

func TestSelectCorrectProtocol(t *testing.T) {
	b := quickBlock(t)
	x, y, err := SelectCorrect([]models.Model{b.ViT, b.BiT}, b.Val, 10)
	if err != nil {
		t.Fatal(err)
	}
	if x.Dim(0) != len(y) || len(y) == 0 || len(y) > 10 {
		t.Fatalf("selected %d samples", len(y))
	}
	// By construction both members classify the selection perfectly —
	// "robust accuracy over these samples is 100% if no attack is run".
	if acc := models.Accuracy(b.ViT, x, y); acc != 1 {
		t.Fatalf("ViT astuteness baseline = %v, want 1", acc)
	}
	if acc := models.Accuracy(b.BiT, x, y); acc != 1 {
		t.Fatalf("BiT astuteness baseline = %v, want 1", acc)
	}
}

func TestTable1RowsMatchPaperShape(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("Table I has %d rows, want 4", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Model] = r
	}
	vitL, vitB := byName["ViT-L/16"], byName["ViT-B/16"]
	bit3, bit4 := byName["BiT-M-R101x3"], byName["BiT-M-R152x4"]
	// Orderings from the paper's Table I.
	if vitB.PortionWeights <= vitL.PortionWeights {
		t.Fatal("ViT-B/16 must shield a larger portion than ViT-L/16")
	}
	if bit3.PortionWeights >= vitL.PortionWeights/10 || bit4.PortionWeights >= vitL.PortionWeights/10 {
		t.Fatal("BiT shields are orders of magnitude smaller portions than ViT shields")
	}
	if bit4.WeightBytes <= bit3.WeightBytes {
		t.Fatal("R152x4 stem is larger than R101x3 stem")
	}
	// Ensemble worst case under 16 MB (the §V-A claim): ViT-L/16 resident
	// plus the BiT stem kernel and gradient (activations stream in tiles).
	if ens := vitL.TEEBytes + 2*bit3.WeightBytes; ens > 16<<20 {
		t.Fatalf("ensemble shield = %d bytes, exceeds the paper's 16 MB bound", ens)
	}
	// ViT-L/16 worst case is the same order as the paper's 15.16 MB.
	if vitL.TEEBytes < 10<<20 || vitL.TEEBytes > 20<<20 {
		t.Fatalf("ViT-L/16 TEE bytes = %d, want ≈15 MB", vitL.TEEBytes)
	}
	out := RenderTable1(rows)
	for _, want := range []string{"ViT-L/16", "BiT-M-R152x4", "Ensemble", "MB"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered Table I missing %q:\n%s", want, out)
		}
	}
}

func TestRunTable3RowShowsShieldingEffect(t *testing.T) {
	if testing.Short() {
		t.Skip("full attack matrix")
	}
	b := quickBlock(t)
	set := DefaultAttackSet()
	set.Steps = 10
	row, err := RunTable3Row(b.ViT, b.Val, 12, set)
	if err != nil {
		t.Fatal(err)
	}
	if len(row.Cells) != 5 {
		t.Fatalf("%d attacks, want 5", len(row.Cells))
	}
	// The paper's headline shape: for the iterative attacks the shielded
	// robust accuracy exceeds the clear one by a wide margin.
	for _, c := range row.Cells {
		if c.Attack == "PGD" || c.Attack == "MIM" {
			if c.Shielded < c.Clear+0.3 {
				t.Fatalf("%s: clear %.2f, shielded %.2f — no shielding effect", c.Attack, c.Clear, c.Shielded)
			}
		}
	}
	table := Table3{Dataset: "SynthCIFAR-10", Rows: []Table3Row{row}}
	out := table.Render()
	if !strings.Contains(out, "ViT-L/16") || !strings.Contains(out, "Clean") {
		t.Fatalf("render missing columns:\n%s", out)
	}
}

func TestRunTable4Grid(t *testing.T) {
	if testing.Short() {
		t.Skip("full SAGA grid")
	}
	b := quickBlock(t)
	set := DefaultAttackSet()
	set.Steps = 8
	tbl, err := RunTable4(b.ViT, b.BiT, b.Val, 12, set)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Columns) != 4 {
		t.Fatalf("%d settings, want 4", len(tbl.Columns))
	}
	var none, both Table4Column
	for _, c := range tbl.Columns {
		switch c.Setting {
		case ShieldNone:
			none = c
		case ShieldBoth:
			both = c
		}
	}
	// Fully shielded ensemble must be far more astute than unshielded.
	if both.Ensemble < none.Ensemble {
		t.Fatalf("shielding hurt the ensemble: none %.2f vs both %.2f", none.Ensemble, both.Ensemble)
	}
	if both.Ensemble < 0.5 {
		t.Fatalf("fully shielded ensemble robust accuracy %.2f too low", both.Ensemble)
	}
	out := tbl.Render()
	for _, want := range []string{"Clean", "Random", "Ensemble", "ViT"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRunFig3OnlyPGDCrosses(t *testing.T) {
	res, err := RunFig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) != 3 {
		t.Fatalf("%d paths, want 3", len(res.Paths))
	}
	verdicts := map[string]bool{}
	for _, p := range res.Paths {
		verdicts[p.Attack] = p.Crossed
		if p.LInf > res.Eps+1e-6 {
			t.Fatalf("%s escaped the ε-ball: %v", p.Attack, p.LInf)
		}
	}
	// The Fig. 3 narrative: the one-step FGSM overshoots the curved
	// boundary, PGD's projected small steps cross it.
	if verdicts["FGSM"] {
		t.Fatal("FGSM should overshoot the ring boundary in this geometry")
	}
	if !verdicts["PGD"] {
		t.Fatal("PGD should cross the boundary")
	}
	out := res.Render()
	if !strings.Contains(out, "PGD") || !strings.Contains(out, "crossed") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestToy2DGradMatchesNumeric(t *testing.T) {
	toy := Toy2D{}
	x := tensor.FromSlice([]float32{0.31, -0.12}, 1, 2, 1, 1)
	y := []int{0}
	grad, _, err := toy.GradCE(x, y)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-3
	for i := 0; i < 2; i++ {
		orig := x.Data()[i]
		lossAt := func(v float32) float64 {
			x.Data()[i] = v
			_, per, err := toy.GradCE(x, y)
			if err != nil {
				t.Fatal(err)
			}
			total := 0.0
			for _, l := range per {
				total += l
			}
			return total
		}
		num := (lossAt(orig+eps) - lossAt(orig-eps)) / (2 * eps)
		x.Data()[i] = orig
		if diff := num - float64(grad.Data()[i]); diff > 1e-2 || diff < -1e-2 {
			t.Fatalf("toy grad[%d]: numeric %v vs analytic %v", i, num, grad.Data()[i])
		}
	}
}

func TestRunFig4AndImages(t *testing.T) {
	if testing.Short() {
		t.Skip("SAGA panels")
	}
	b := quickBlock(t)
	set := DefaultAttackSet()
	set.Steps = 6
	res, err := RunFig4(b.ViT, b.BiT, b.Val, set)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Panels) != 4 {
		t.Fatalf("%d panels, want 4", len(res.Panels))
	}
	dir := t.TempDir()
	if err := res.WriteImages(dir); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.p?m"))
	if err != nil {
		t.Fatal(err)
	}
	// original.ppm + 4 perturbed + 4 perturbation maps.
	if len(files) != 9 {
		t.Fatalf("%d image files, want 9", len(files))
	}
	// PPM header sanity.
	data, err := os.ReadFile(filepath.Join(dir, "original.ppm"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "P6\n16 16\n255\n") {
		t.Fatalf("bad PPM header: %q", data[:16])
	}
	out := res.Render()
	if !strings.Contains(out, "Fig. 4") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestFormatBytes(t *testing.T) {
	tests := []struct {
		n    int64
		want string
	}{
		{512, "512 B"},
		{2048, "2.00 KB"},
		{3 << 20, "3.00 MB"},
	}
	for _, tt := range tests {
		if got := FormatBytes(tt.n); got != tt.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", tt.n, got, tt.want)
		}
	}
}

func TestAttackSetRoster(t *testing.T) {
	set := DefaultAttackSet()
	atks := set.Attacks()
	if len(atks) != 5 {
		t.Fatalf("%d attacks, want 5", len(atks))
	}
	names := map[string]bool{}
	for _, a := range atks {
		names[a.Name()] = true
	}
	for _, want := range []string{"FGSM", "PGD", "MIM", "C&W", "APGD"} {
		if !names[want] {
			t.Fatalf("missing attack %s", want)
		}
	}
	if set.SAGA().Name() != "SAGA" {
		t.Fatal("SAGA missing")
	}
}
