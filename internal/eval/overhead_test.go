package eval

import (
	"strings"
	"testing"

	"pelta/internal/models"
	"pelta/internal/tensor"
)

func TestMeasureOverhead(t *testing.T) {
	m := models.NewViT(models.SmallViT("vit-ovh", 4, 8, 4), tensor.NewRNG(1))
	rep, err := MeasureOverhead(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SwitchesPerPass <= 0 {
		t.Fatalf("switches = %d, want > 0", rep.SwitchesPerPass)
	}
	if rep.BytesPerPass <= 0 {
		t.Fatalf("bytes = %d, want > 0", rep.BytesPerPass)
	}
	if rep.ModelledOverheadPass <= 0 {
		t.Fatal("modelled overhead should accumulate")
	}
	if rep.ClearPass <= 0 || rep.ShieldedPass <= 0 {
		t.Fatal("wall-clock measurements missing")
	}
	out := RenderOverhead([]*OverheadReport{rep})
	for _, want := range []string{"vit-ovh", "switches", "shielded"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
