package obs

import "sync/atomic"

// Kernel op indices. They mirror internal/tensor's KernelOp values so the
// serving layer can forward hook callbacks without translation (pinned by
// a test in internal/serve).
const (
	KernelMatMul = iota
	KernelConv
	KernelAttention
	numKernelOps
)

// KernelOpNames names the ops in index order.
var KernelOpNames = [numKernelOps]string{"matmul", "conv", "attention"}

// KernelStats accumulates kernel-boundary time and call counts per op.
// It is written from the tensor hooks (potentially many worker goroutines)
// and read by the registry and the serving workers, so everything is
// atomic.
type KernelStats struct {
	ns    [numKernelOps]atomic.Int64
	calls [numKernelOps]atomic.Int64
}

// Add records one kernel invocation of op lasting ns nanoseconds.
func (k *KernelStats) Add(op int, ns int64) {
	if op < 0 || op >= numKernelOps {
		return
	}
	k.ns[op].Add(ns)
	k.calls[op].Add(1)
}

// NS returns the accumulated nanoseconds for op.
func (k *KernelStats) NS(op int) int64 {
	if op < 0 || op >= numKernelOps {
		return 0
	}
	return k.ns[op].Load()
}

// Calls returns the accumulated invocation count for op.
func (k *KernelStats) Calls(op int) int64 {
	if op < 0 || op >= numKernelOps {
		return 0
	}
	return k.calls[op].Load()
}

// SnapshotNS copies the per-op nanosecond totals — the serving worker
// diffs two snapshots around a replica call to attribute kernel time to a
// batch.
func (k *KernelStats) SnapshotNS() [3]int64 {
	var s [3]int64
	for i := 0; i < numKernelOps; i++ {
		s[i] = k.ns[i].Load()
	}
	return s
}

// Metrics renders the totals as registry samples.
func (k *KernelStats) Metrics() []Metric {
	out := make([]Metric, 0, 2*numKernelOps)
	for i := 0; i < numKernelOps; i++ {
		labels := map[string]string{"op": KernelOpNames[i]}
		out = append(out,
			Counter("pelta_kernel_ns_total", "Accumulated kernel time per op in nanoseconds.", float64(k.ns[i].Load()), labels),
			Counter("pelta_kernel_calls_total", "Kernel invocations per op.", float64(k.calls[i].Load()), labels),
		)
	}
	return out
}
