package obs

import (
	"bufio"
	"encoding/json"
	"io"
)

// RoundSpan is one federated round's phase timing record — the flsim
// -trace NDJSON row. Train time is measured inside the clients; transport
// is the round-trip remainder (update wall time minus client train time)
// summed across clients; aggregate covers the aggregation rule plus
// applying the merged update; broadcast covers snapshotting and encoding
// the new global weights.
type RoundSpan struct {
	Round       int   `json:"round"`
	Clients     int   `json:"clients"`
	TrainNS     int64 `json:"train_ns"`
	TransportNS int64 `json:"transport_ns"`
	AggregateNS int64 `json:"aggregate_ns"`
	BroadcastNS int64 `json:"broadcast_ns"`
}

// RoundPhaseNames orders the round phases; RoundSpan.Phases returns
// durations in the same order.
var RoundPhaseNames = [4]string{"train", "transport", "aggregate", "broadcast"}

// Phases returns the phase durations in RoundPhaseNames order.
func (r *RoundSpan) Phases() [4]int64 {
	return [4]int64{r.TrainNS, r.TransportNS, r.AggregateNS, r.BroadcastNS}
}

// WriteRoundSpans streams spans as NDJSON.
func WriteRoundSpans(w io.Writer, spans []RoundSpan) error {
	enc := json.NewEncoder(w)
	for i := range spans {
		if err := enc.Encode(&spans[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReadRoundSpans parses NDJSON round spans; a first line that does not
// decode as a RoundSpan reports an error so callers can sniff file kinds.
func ReadRoundSpans(r io.Reader) ([]RoundSpan, error) {
	var out []RoundSpan
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var s RoundSpan
		if err := json.Unmarshal(line, &s); err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
