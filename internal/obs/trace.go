package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Clock is the minimal timebase the tracer needs. serve.Clock satisfies it,
// so traces run on the same (possibly fake) timeline as the scheduler.
type Clock interface {
	Now() time.Time
}

// Request outcomes recorded on span records. Everything except
// OutcomeServed counts as an anomaly and is traced even when unsampled.
const (
	OutcomeServed            = "served"
	OutcomeRejected          = "rejected"
	OutcomeShedDeadlineAdmit = "shed-deadline-admission"
	OutcomeShedDetect        = "shed-detect"
	OutcomeShedAdmitLimit    = "shed-admission-limit"
	OutcomeShedQueueFull     = "shed-queue-full"
	OutcomeShedDeadlineBatch = "shed-deadline-batch"
	OutcomeError             = "error"
)

// NoOffset marks a chain offset for a stage the request never reached.
const NoOffset = int64(-1)

// SpanRecord is one request's timeline. Enter is the absolute entry
// timestamp; every other instant is a nanosecond offset from Enter (or
// NoOffset when the request terminated earlier). The chain is ordered
//
//	Enter ≤ DetectStart ≤ DetectEnd ≤ Enqueued ≤ Pickup ≤ InferStart ≤ InferEnd
//
// and the derived stage durations (Stages) partition End() exactly.
type SpanRecord struct {
	ID      uint64 `json:"id"`
	Route   string `json:"route"`
	Client  string `json:"client,omitempty"`
	Outcome string `json:"outcome"`
	Flagged bool   `json:"flagged,omitempty"`
	Batch   int    `json:"batch,omitempty"`

	EnterUnixNS int64 `json:"enter_unix_ns"`
	DetectStart int64 `json:"detect_start_ns"`
	DetectEnd   int64 `json:"detect_end_ns"`
	Enqueued    int64 `json:"enqueued_ns"`
	Pickup      int64 `json:"pickup_ns"`
	InferStart  int64 `json:"infer_start_ns"`
	InferEnd    int64 `json:"infer_end_ns"`

	// Kernel time attributed to the batch this request rode (hooks in
	// internal/tensor), not divided per row; zero when hooks are off.
	MatMulNS int64 `json:"matmul_ns,omitempty"`
	ConvNS   int64 `json:"conv_ns,omitempty"`
	AttnNS   int64 `json:"attn_ns,omitempty"`
}

// NewSpanRecord starts a chain at enter with every offset unreached.
func NewSpanRecord(enter time.Time) SpanRecord {
	return SpanRecord{
		EnterUnixNS: enter.UnixNano(),
		DetectStart: NoOffset,
		DetectEnd:   NoOffset,
		Enqueued:    NoOffset,
		Pickup:      NoOffset,
		InferStart:  NoOffset,
		InferEnd:    NoOffset,
	}
}

// Offset converts an absolute instant to this record's chain offset.
func (r *SpanRecord) Offset(t time.Time) int64 { return t.UnixNano() - r.EnterUnixNS }

// End returns the last reached offset — the request's end-to-end latency
// in nanoseconds (0 when it terminated during validation).
func (r *SpanRecord) End() int64 {
	for _, o := range []int64{r.InferEnd, r.InferStart, r.Pickup, r.Enqueued, r.DetectEnd} {
		if o != NoOffset {
			return o
		}
	}
	return 0
}

// Anomaly reports whether this record must be kept regardless of sampling:
// anything that was shed, rejected, errored, or flagged.
func (r *SpanRecord) Anomaly() bool {
	return r.Flagged || (r.Outcome != "" && r.Outcome != OutcomeServed)
}

// StageNames orders the five request stages; Stages returns durations in
// the same order.
var StageNames = [5]string{"detect", "admission", "queue", "batch", "infer"}

// Stages decomposes the record into per-stage durations (ns) that sum to
// End() exactly:
//
//	detect    — probe-detector lookup (zero without a client identity)
//	admission — validation, deadline check, token bucket, queue send
//	queue     — waiting in the admission queue for a worker
//	batch     — batch assembly: deadline filter and tensor stacking
//	infer     — the replica's forward pass
//
// A stage the request never reached contributes zero, and the stage during
// which it terminated absorbs the remainder, so the partition property
// holds for shed and errored requests too.
func (r *SpanRecord) Stages() [5]int64 {
	var s [5]int64
	if r.DetectStart != NoOffset && r.DetectEnd != NoOffset {
		s[0] = r.DetectEnd - r.DetectStart
	}
	end := r.End()
	switch {
	case r.Enqueued == NoOffset:
		s[1] = end - s[0] // terminated during admission
	default:
		s[1] = r.Enqueued - s[0]
	}
	if r.Enqueued != NoOffset && r.Pickup != NoOffset {
		s[2] = r.Pickup - r.Enqueued
	}
	if r.Pickup != NoOffset {
		if r.InferStart != NoOffset {
			s[3] = r.InferStart - r.Pickup
		} else if r.Outcome == OutcomeShedDeadlineBatch || r.Outcome == OutcomeError {
			s[3] = end - r.Pickup // terminated during assembly/replica error
		}
	}
	if r.InferStart != NoOffset && r.InferEnd != NoOffset {
		s[4] = r.InferEnd - r.InferStart
	}
	return s
}

// Tracer records request span timelines into a bounded ring. The zero
// value is unusable; build one with NewTracer. A nil *Tracer is the
// disabled state: callers must nil-check before recording, which keeps the
// untraced hot path allocation-free.
type Tracer struct {
	clock Clock
	every uint64 // sample every Nth Begin; 0 = anomalies only

	ids atomic.Uint64 // span IDs, also the systematic-sampling counter

	mu    sync.Mutex
	ring  []SpanRecord
	next  int
	full  bool
	total uint64 // emitted over the tracer's lifetime
}

// DefaultTraceCap bounds the span ring when the caller passes capacity ≤ 0.
const DefaultTraceCap = 4096

// NewTracer builds a tracer on clock keeping up to capacity records and
// sampling every Nth request (every=1 traces all, every=0 traces anomalies
// only). Anomalies are always kept.
func NewTracer(clock Clock, capacity int, every uint64) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{clock: clock, every: every, ring: make([]SpanRecord, capacity)}
}

// SampleEvery converts a sampling fraction (1.0 = every request, 0.5 =
// every 2nd, 0 = anomalies only) to the tracer's every-Nth stride.
func SampleEvery(rate float64) uint64 {
	if rate <= 0 {
		return 0
	}
	if rate >= 1 {
		return 1
	}
	return uint64(1/rate + 0.5)
}

// Clock returns the tracer's timebase.
func (t *Tracer) Clock() Clock { return t.clock }

// Begin allocates the next span ID and reports whether this request is in
// the systematic sample. Callers still Emit unsampled records when they
// turn out to be anomalies.
func (t *Tracer) Begin() (id uint64, sampled bool) {
	id = t.ids.Add(1)
	return id, t.every > 0 && id%t.every == 0
}

// Emit copies r into the ring, overwriting the oldest record when full.
func (t *Tracer) Emit(r SpanRecord) {
	t.mu.Lock()
	t.ring[t.next] = r
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.total++
	t.mu.Unlock()
}

// Len reports how many records the ring currently holds.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.ring)
	}
	return t.next
}

// Total reports how many records were emitted over the tracer's lifetime
// (≥ Len once the ring wraps).
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Records returns the retained records ordered by span ID — submission
// order, not emission (wall) order, which is what makes trace summaries
// byte-stable across worker interleavings.
func (t *Tracer) Records() []SpanRecord {
	t.mu.Lock()
	n := t.next
	if t.full {
		n = len(t.ring)
	}
	out := make([]SpanRecord, n)
	copy(out, t.ring[:n])
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// WriteNDJSON streams the retained records (ID order) as one JSON object
// per line — the GET /trace wire format.
func (t *Tracer) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, r := range t.Records() {
		if err := enc.Encode(&r); err != nil {
			return err
		}
	}
	return nil
}
