package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// stillClock is a frozen Clock for tracer construction.
type stillClock struct{ t time.Time }

func (c stillClock) Now() time.Time { return c.t }

// TestStagesPartitionEndToEnd pins the core invariant: stage durations sum
// to the last reached offset, for served and early-terminated records.
func TestStagesPartitionEndToEnd(t *testing.T) {
	enter := time.Unix(1000, 0)

	served := NewSpanRecord(enter)
	served.DetectStart = 0
	served.DetectEnd = 5
	served.Enqueued = 9
	served.Pickup = 29
	served.InferStart = 31
	served.InferEnd = 131
	served.Outcome = OutcomeServed

	shedAdmit := NewSpanRecord(enter)
	shedAdmit.DetectStart = 0
	shedAdmit.DetectEnd = 7
	shedAdmit.Outcome = OutcomeShedDetect

	shedBatch := NewSpanRecord(enter)
	shedBatch.Enqueued = 3
	shedBatch.Pickup = 50
	shedBatch.Outcome = OutcomeShedDeadlineBatch

	for name, r := range map[string]SpanRecord{
		"served": served, "shed-admit": shedAdmit, "shed-batch": shedBatch,
	} {
		var sum int64
		for _, d := range r.Stages() {
			if d < 0 {
				t.Fatalf("%s: negative stage duration in %v", name, r.Stages())
			}
			sum += d
		}
		if sum != r.End() {
			t.Fatalf("%s: stage sum %d != end-to-end %d", name, sum, r.End())
		}
	}
	if got := served.Stages(); got != [5]int64{5, 4, 20, 2, 100} {
		t.Fatalf("served stages = %v", got)
	}
	if served.End() != 131 {
		t.Fatalf("served end = %d, want 131", served.End())
	}
	if !shedAdmit.Anomaly() || served.Anomaly() {
		t.Fatal("anomaly classification wrong")
	}
}

// TestTracerSamplingAndAnomalies pins systematic sampling plus the
// always-keep-anomalies rule.
func TestTracerSamplingAndAnomalies(t *testing.T) {
	clock := stillClock{t: time.Unix(1000, 0)}
	tr := NewTracer(clock, 16, 2) // every 2nd request
	sampled := 0
	for i := 0; i < 10; i++ {
		id, ok := tr.Begin()
		if ok {
			sampled++
		}
		r := NewSpanRecord(clock.Now())
		r.ID = id
		r.Outcome = OutcomeServed
		if ok {
			tr.Emit(r)
		} else if i == 2 { // unsampled anomaly still emitted
			r.Outcome = OutcomeShedQueueFull
			tr.Emit(r)
		}
	}
	if sampled != 5 {
		t.Fatalf("sampled %d of 10 at every=2, want 5", sampled)
	}
	if tr.Len() != 6 {
		t.Fatalf("ring holds %d, want 6 (5 sampled + 1 anomaly)", tr.Len())
	}
	if SampleEvery(1.0) != 1 || SampleEvery(0.25) != 4 || SampleEvery(0) != 0 {
		t.Fatal("SampleEvery conversion wrong")
	}
}

// TestTracerRingOrderAndWrap pins ID-ordered Records across a ring wrap.
func TestTracerRingOrderAndWrap(t *testing.T) {
	clock := stillClock{t: time.Unix(1000, 0)}
	tr := NewTracer(clock, 4, 1)
	for i := 0; i < 7; i++ {
		id, _ := tr.Begin()
		r := NewSpanRecord(clock.Now())
		r.ID = id
		r.Outcome = OutcomeServed
		tr.Emit(r)
	}
	recs := tr.Records()
	if len(recs) != 4 || tr.Total() != 7 {
		t.Fatalf("len=%d total=%d, want 4 and 7", len(recs), tr.Total())
	}
	for i, r := range recs {
		if r.ID != uint64(4+i) {
			t.Fatalf("record %d has ID %d, want %d (oldest overwritten, ID order)", i, r.ID, 4+i)
		}
	}
	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 4 {
		t.Fatalf("NDJSON has %d lines, want 4", lines)
	}
}

// TestRegistryPromExposition pins the text exposition format: grouped
// headers, sorted labels, escaping.
func TestRegistryPromExposition(t *testing.T) {
	g := NewRegistry()
	g.Register("serve", func() []Metric {
		return []Metric{
			Counter("pelta_requests_total", "Requests by route.", 3, map[string]string{"route": "benign"}),
			Counter("pelta_requests_total", "Requests by route.", 1, map[string]string{"route": `a"dv`}),
			Gauge("pelta_replicas", "Live replicas.", 2, nil),
		}
	})
	var buf bytes.Buffer
	if err := g.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "# HELP pelta_requests_total Requests by route.\n" +
		"# TYPE pelta_requests_total counter\n" +
		"pelta_requests_total{route=\"a\\\"dv\"} 1\n" +
		"pelta_requests_total{route=\"benign\"} 3\n" +
		"# HELP pelta_replicas Live replicas.\n" +
		"# TYPE pelta_replicas gauge\n" +
		"pelta_replicas 2\n"
	if got != want {
		t.Fatalf("exposition mismatch:\n got: %q\nwant: %q", got, want)
	}
}

// TestKernelStats pins accumulation, snapshot diffing, and metric names.
func TestKernelStats(t *testing.T) {
	var k KernelStats
	before := k.SnapshotNS()
	k.Add(KernelMatMul, 100)
	k.Add(KernelMatMul, 50)
	k.Add(KernelAttention, 7)
	after := k.SnapshotNS()
	if d := after[KernelMatMul] - before[KernelMatMul]; d != 150 {
		t.Fatalf("matmul delta %d, want 150", d)
	}
	if k.Calls(KernelMatMul) != 2 || k.NS(KernelAttention) != 7 || k.NS(KernelConv) != 0 {
		t.Fatal("kernel stats accumulation wrong")
	}
	if len(k.Metrics()) != 6 {
		t.Fatalf("metrics count %d, want 6", len(k.Metrics()))
	}
}

// TestRoundSpanRoundTrip pins the NDJSON round-span schema.
func TestRoundSpanRoundTrip(t *testing.T) {
	in := []RoundSpan{
		{Round: 0, Clients: 4, TrainNS: 100, TransportNS: 20, AggregateNS: 9, BroadcastNS: 5},
		{Round: 1, Clients: 4, TrainNS: 90, TransportNS: 25, AggregateNS: 8, BroadcastNS: 5},
	}
	var buf bytes.Buffer
	if err := WriteRoundSpans(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadRoundSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[1] != in[1] {
		t.Fatalf("round-trip mismatch: %+v", out)
	}
	if p := in[0].Phases(); p != [4]int64{100, 20, 9, 5} {
		t.Fatalf("phases = %v", p)
	}
}
