// Package obs is the unified observability layer: deterministic request
// tracing plus a telemetry registry shared by every subsystem.
//
// Tracing is fake-clock-native. A SpanRecord stores one request's timeline
// as a chain of nanosecond offsets from its entry timestamp — detect
// lookup, admission, queue residency, batch assembly, replica inference —
// so the per-stage durations partition the end-to-end latency exactly
// (their sum equals the last reached offset by construction). Records are
// taken on whatever Clock the caller injects, which makes traces
// bit-reproducible under the test clocks used across the repo. The Tracer
// keeps a bounded ring of records, samples the happy path systematically
// (every Nth request), and always keeps anomalies (shed, rejected,
// errored, or flagged requests) regardless of the sampling rate.
//
// The Registry unifies counters and gauges from serve, detect, the
// autoscaler, fl round timings, tensor kernel totals, and tee enclave
// headroom behind named Collector funcs, and renders them as Prometheus
// text exposition format v0 (served by the HTTP layer on
// GET /metrics?format=prom).
//
// KernelStats accumulates matmul/conv/attention time reported by the
// kernel-boundary hooks in internal/tensor; the serving worker snapshots
// it around each replica call to attribute kernel time to batches.
package obs
