package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Metric types understood by the Prometheus text renderer.
const (
	TypeCounter = "counter"
	TypeGauge   = "gauge"
)

// Metric is one exposition sample: a named value with optional labels.
type Metric struct {
	Name   string
	Help   string
	Type   string // TypeCounter or TypeGauge
	Labels map[string]string
	Value  float64
}

// Counter builds a counter sample.
func Counter(name, help string, v float64, labels map[string]string) Metric {
	return Metric{Name: name, Help: help, Type: TypeCounter, Labels: labels, Value: v}
}

// Gauge builds a gauge sample.
func Gauge(name, help string, v float64, labels map[string]string) Metric {
	return Metric{Name: name, Help: help, Type: TypeGauge, Labels: labels, Value: v}
}

// Collector produces a subsystem's current samples. Collectors run under
// the registry's lock at gather time and must take their own snapshots
// (a collector sees concurrent updates to its subsystem).
type Collector func() []Metric

// Registry unifies collectors from every subsystem behind one gather
// point. Collectors register under a name (serve, detect, autoscale, fl,
// tensor, tee); Gather runs them in registration order so exposition is
// stable run to run.
type Registry struct {
	mu    sync.Mutex
	names []string
	colls map[string]Collector
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{colls: make(map[string]Collector)}
}

// Register installs (or replaces) the collector under name.
func (g *Registry) Register(name string, c Collector) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.colls[name]; !ok {
		g.names = append(g.names, name)
	}
	g.colls[name] = c
}

// Gather runs every collector and returns the combined samples, grouped by
// metric name (registration order decides which name comes first) with
// each name's samples ordered by their label signature.
func (g *Registry) Gather() []Metric {
	g.mu.Lock()
	var all []Metric
	for _, n := range g.names {
		all = append(all, g.colls[n]()...)
	}
	g.mu.Unlock()

	// Group by first appearance of each metric name, then sort each
	// group's samples by label signature for a canonical exposition.
	order := make(map[string]int, len(all))
	for _, m := range all {
		if _, ok := order[m.Name]; !ok {
			order[m.Name] = len(order)
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if order[all[i].Name] != order[all[j].Name] {
			return order[all[i].Name] < order[all[j].Name]
		}
		return labelSignature(all[i].Labels) < labelSignature(all[j].Labels)
	})
	return all
}

// WriteProm renders the gathered samples as Prometheus text exposition
// format version 0.0.4: one # HELP / # TYPE header per metric name
// followed by its samples.
func (g *Registry) WriteProm(w io.Writer) error {
	var b strings.Builder
	seen := ""
	for _, m := range g.Gather() {
		if m.Name != seen {
			seen = m.Name
			if m.Help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", m.Name, escapeHelp(m.Help))
			}
			typ := m.Type
			if typ == "" {
				typ = "untyped"
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", m.Name, typ)
		}
		b.WriteString(m.Name)
		b.WriteString(labelSignature(m.Labels))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatFloat(m.Value, 'g', -1, 64))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// labelSignature renders {k="v",...} with keys sorted, or "" for none.
func labelSignature(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

// escapeHelp escapes a help string per the exposition format.
func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}
