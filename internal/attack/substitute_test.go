package attack

import (
	"testing"

	"pelta/internal/core"
	"pelta/internal/models"
	"pelta/internal/tensor"
)

func TestSubstituteStemOracleDistills(t *testing.T) {
	if testing.Short() {
		t.Skip("distillation test")
	}
	m, x, y := setup(t)
	sm, err := core.NewShieldedModel(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The attacker distills a stem on its own (unlabeled) samples.
	sub, err := NewSubstituteStemOracle(sm, m, x, DefaultSubstituteBudget())
	if err != nil {
		t.Fatal(err)
	}
	if sub.Classes() != m.Classes() {
		t.Fatal("oracle metadata wrong")
	}
	grad, per, err := sub.GradCE(x, y)
	if err != nil {
		t.Fatal(err)
	}
	loss := 0.0
	for _, l := range per {
		loss += l
	}
	if !grad.SameShape(x) || loss <= 0 {
		t.Fatalf("substitute gradient shape %v loss %v", grad.Shape(), loss)
	}
	// Logits still come from the real victim.
	victimLogits, err := (&ClearOracle{M: m}).Logits(x)
	if err != nil {
		t.Fatal(err)
	}
	subLogits, err := sub.Logits(x)
	if err != nil {
		t.Fatal(err)
	}
	if !subLogits.AllClose(victimLogits, 1e-4) {
		t.Fatal("substitute oracle must report the victim's observable logits")
	}
}

func TestSubstituteAttackStrongerThanUpsampling(t *testing.T) {
	if testing.Short() {
		t.Skip("distillation test")
	}
	// §IV-C: BPDA with a trained approximation is the stronger adaptive
	// attack; with enough distillation budget it should fool at least as
	// many samples as the blind upsampler (median kernel).
	m, x, y := setup(t)
	sm, err := core.NewShieldedModel(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	pgd := &PGD{Eps: 0.1, Step: 0.0125, Steps: 10}

	budget := DefaultSubstituteBudget()
	budget.Epochs = 6
	sub, err := NewSubstituteStemOracle(sm, m, x, budget)
	if err != nil {
		t.Fatal(err)
	}
	xSub, err := pgd.Perturb(sub, x, y)
	if err != nil {
		t.Fatal(err)
	}
	subRobust := robustAccuracy(t, &ClearOracle{M: m}, xSub, y)

	robusts := make([]float64, 0, 3)
	for seed := int64(101); seed <= 103; seed++ {
		up, err := NewShieldedOracle(sm, seed)
		if err != nil {
			t.Fatal(err)
		}
		xUp, err := pgd.Perturb(up, x, y)
		if err != nil {
			t.Fatal(err)
		}
		robusts = append(robusts, robustAccuracy(t, &ClearOracle{M: m}, xUp, y))
	}
	// Median upsampling robustness.
	for i := 1; i < len(robusts); i++ {
		for j := i; j > 0 && robusts[j] < robusts[j-1]; j-- {
			robusts[j], robusts[j-1] = robusts[j-1], robusts[j]
		}
	}
	upRobust := robusts[1]
	if subRobust > upRobust+0.26 {
		t.Fatalf("distilled substitute (robust %.2f) should not be weaker than blind upsampling (median %.2f)", subRobust, upRobust)
	}
	t.Logf("substitute robust=%.2f, upsampling median robust=%.2f", subRobust, upRobust)
}

func TestSubstituteRequiresSamples(t *testing.T) {
	m, _, _ := setup(t)
	sm, err := core.NewShieldedModel(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	empty := tensor.New(0, 3, 16, 16)
	if _, err := NewSubstituteStemOracle(sm, m, empty, DefaultSubstituteBudget()); err == nil {
		t.Fatal("empty attacker dataset must fail")
	}
}

func TestTargetedFGSMAndPGD(t *testing.T) {
	m, x, y := setup(t)
	o := &ClearOracle{M: m}
	// Pick a fixed wrong target class per sample.
	targets := make([]int, len(y))
	for i, yi := range y {
		targets[i] = (yi + 1) % m.Classes()
	}
	pgd := &PGD{Eps: 0.15, Step: 0.02, Steps: 15, Targeted: true}
	xadv, err := pgd.Perturb(o, x, targets)
	if err != nil {
		t.Fatal(err)
	}
	pred := models.Predict(m, xadv)
	hit := 0
	for i := range pred {
		if pred[i] == targets[i] {
			hit++
		}
	}
	if float64(hit)/float64(len(y)) < 0.5 {
		t.Fatalf("targeted PGD hit rate %d/%d too low", hit, len(y))
	}
	// Targeted FGSM should at least move some predictions toward targets
	// more often than the clean model does (clean = 0 by construction).
	fgsm := &FGSM{Eps: 0.15, Targeted: true}
	xf, err := fgsm.Perturb(o, x, targets)
	if err != nil {
		t.Fatal(err)
	}
	predF := models.Predict(m, xf)
	hitF := 0
	for i := range predF {
		if predF[i] == targets[i] {
			hitF++
		}
	}
	if hitF == 0 {
		t.Log("targeted FGSM hit nothing (acceptable for one-step), PGD covered the property")
	}
}
