package attack

import (
	"testing"

	"pelta/internal/models"
	"pelta/internal/tensor"
)

// TestParallelOracleMatchesSingleWorker checks the fan-out contract:
// chunked per-sample queries across several workers must reproduce the
// single-oracle batch answers bit-for-bit (inference-mode passes couple
// nothing across the batch dimension).
func TestParallelOracleMatchesSingleWorker(t *testing.T) {
	vit := models.NewViT(models.SmallViT("par-vit", 5, 16, 4), tensor.NewRNG(8))
	x := tensor.NewRNG(9).Uniform(0, 1, 6, 3, 16, 16)
	y := []int{0, 1, 2, 3, 4, 0}

	single := NewClearOracle(vit)
	par := NewParallelClearOracle(vit, 3)

	wantLogits, err := single.Logits(x)
	if err != nil {
		t.Fatal(err)
	}
	gotLogits, err := par.Logits(x)
	if err != nil {
		t.Fatal(err)
	}
	if !gotLogits.AllClose(wantLogits, 0) {
		t.Fatal("parallel logits differ from single-worker logits")
	}

	wantGrad, wantPer, err := single.GradCE(x, y)
	if err != nil {
		t.Fatal(err)
	}
	wantGrad = wantGrad.Clone()
	gotGrad, gotPer, err := par.GradCE(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !gotGrad.AllClose(wantGrad, 0) {
		t.Fatal("parallel ∇x differs from single-worker ∇x")
	}
	for i := range wantPer {
		if wantPer[i] != gotPer[i] {
			t.Fatalf("per-sample loss %d: %v vs %v", i, gotPer[i], wantPer[i])
		}
	}

	// Fused rollout fan-out composes per-sample as well.
	if !par.CanRollout() {
		t.Fatal("parallel ViT oracle should support rollouts")
	}
	sGrad, sRoll, _, err := single.GradCERollout(x, y)
	if err != nil {
		t.Fatal(err)
	}
	sGrad, sRoll = sGrad.Clone(), sRoll.Clone()
	pGrad, pRoll, _, err := par.GradCERollout(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !pGrad.AllClose(sGrad, 0) || !pRoll.AllClose(sRoll, 0) {
		t.Fatal("parallel fused rollout differs from single-worker result")
	}

	// GradCW: gradients bit-identical; the scalar objective may differ only
	// by float addition order across chunks.
	x0 := x.Clone()
	wantCW, _, err := single.GradCW(x, y, x0, 0.5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	wantCW = wantCW.Clone()
	gotCW, _, err := par.GradCW(x, y, x0, 0.5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !gotCW.AllClose(wantCW, 0) {
		t.Fatal("parallel C&W gradient differs from single-worker gradient")
	}
}
