package attack

import (
	"math"
	"sync"
	"testing"

	"pelta/internal/core"
	"pelta/internal/dataset"
	"pelta/internal/models"
	"pelta/internal/tensor"
)

// trainedViT caches one trained small ViT and its evaluation data across
// tests (training costs a couple of seconds).
var (
	setupOnce sync.Once
	vitModel  *models.ViT
	evalX     *tensor.Tensor
	evalY     []int
)

func setup(t *testing.T) (*models.ViT, *tensor.Tensor, []int) {
	t.Helper()
	if testing.Short() {
		t.Skip("paper-reproduction attack suite skipped in -short mode")
	}
	setupOnce.Do(func() {
		cfg := dataset.SynthCIFAR10(16, 21)
		cfg.Classes = 6
		cfg.TrainN, cfg.ValN = 300, 120
		train, val := dataset.Generate(cfg)
		vitModel = models.NewViT(models.SmallViT("vit-attack", 6, 16, 4), tensor.NewRNG(2))
		if _, err := models.Train(vitModel, train.X, train.Y, models.TrainConfig{Epochs: 6, BatchSize: 32, LR: 2e-3, Seed: 3}); err != nil {
			panic(err)
		}
		// Keep only correctly classified validation samples (astuteness
		// protocol, §V-C).
		pred := models.Predict(vitModel, val.X)
		var idx []int
		for i := range pred {
			if pred[i] == val.Y[i] && len(idx) < 24 {
				idx = append(idx, i)
			}
		}
		sub := val.Subset(idx)
		evalX, evalY = sub.X, sub.Y
	})
	if len(evalY) < 12 {
		t.Fatalf("defender too weak: only %d correctly classified samples", len(evalY))
	}
	return vitModel, evalX, evalY
}

func robustAccuracy(t *testing.T, o Oracle, xadv *tensor.Tensor, y []int) float64 {
	t.Helper()
	mask, err := SuccessMask(o, xadv, y)
	if err != nil {
		t.Fatal(err)
	}
	ok := 0
	for _, s := range mask {
		if !s {
			ok++
		}
	}
	return float64(ok) / float64(len(y))
}

func TestPGDBreaksClearModel(t *testing.T) {
	m, x, y := setup(t)
	o := &ClearOracle{M: m}
	pgd := &PGD{Eps: 0.1, Step: 0.0125, Steps: 20}
	xadv, err := pgd.Perturb(o, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if ra := robustAccuracy(t, o, xadv, y); ra > 0.3 {
		t.Fatalf("PGD vs clear model: robust accuracy %.2f, want near-total break", ra)
	}
	// Perturbation respects the ε-ball and pixel box.
	diff := tensor.Sub(xadv, x)
	if linf := tensor.NormLInf(diff); linf > 0.1+1e-5 {
		t.Fatalf("l∞ = %v exceeds ε", linf)
	}
	for _, v := range xadv.Data() {
		if v < 0 || v > 1 {
			t.Fatalf("pixel %v outside box", v)
		}
	}
}

func TestFGSMWeakerThanPGD(t *testing.T) {
	m, x, y := setup(t)
	o := &ClearOracle{M: m}
	fgsm := &FGSM{Eps: 0.1}
	xf, err := fgsm.Perturb(o, x, y)
	if err != nil {
		t.Fatal(err)
	}
	pgd := &PGD{Eps: 0.1, Step: 0.0125, Steps: 20}
	xp, err := pgd.Perturb(o, x, y)
	if err != nil {
		t.Fatal(err)
	}
	raF := robustAccuracy(t, o, xf, y)
	raP := robustAccuracy(t, o, xp, y)
	if raP > raF+1e-9 {
		t.Fatalf("PGD (%.2f) should be at least as strong as FGSM (%.2f)", raP, raF)
	}
}

func TestMIMBreaksClearModel(t *testing.T) {
	m, x, y := setup(t)
	o := &ClearOracle{M: m}
	mim := &MIM{Eps: 0.1, Step: 0.0125, Steps: 20, Mu: 1}
	xadv, err := mim.Perturb(o, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if ra := robustAccuracy(t, o, xadv, y); ra > 0.3 {
		t.Fatalf("MIM robust accuracy %.2f, want near-total break", ra)
	}
}

func TestAPGDBreaksClearModel(t *testing.T) {
	m, x, y := setup(t)
	o := &ClearOracle{M: m}
	apgd := &APGD{Eps: 0.1, Steps: 15, Rho: 0.75, Restarts: 1, Seed: 5}
	xadv, err := apgd.Perturb(o, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if ra := robustAccuracy(t, o, xadv, y); ra > 0.3 {
		t.Fatalf("APGD robust accuracy %.2f, want near-total break", ra)
	}
	diff := tensor.Sub(xadv, x)
	if linf := tensor.NormLInf(diff); linf > 0.1+1e-5 {
		t.Fatalf("APGD left the ε-ball: %v", linf)
	}
}

func TestAPGDCheckpointsIncrease(t *testing.T) {
	a := &APGD{Steps: 100}
	cps := a.checkpoints()
	if cps[0] != 0 || cps[1] != 22 {
		t.Fatalf("first checkpoints = %v", cps[:2])
	}
	for i := 1; i < len(cps); i++ {
		if cps[i] <= cps[i-1] {
			t.Fatalf("checkpoints not increasing: %v", cps)
		}
	}
}

func TestCWBreaksClearModel(t *testing.T) {
	m, x, y := setup(t)
	o := &ClearOracle{M: m}
	cw := &CW{Confidence: 0, Step: 0.01, Steps: 30, C: 0.05}
	xadv, err := cw.Perturb(o, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if ra := robustAccuracy(t, o, xadv, y); ra > 0.4 {
		t.Fatalf("C&W robust accuracy %.2f, want strong break", ra)
	}
	for _, v := range xadv.Data() {
		if v < 0 || v > 1 {
			t.Fatalf("tanh parametrization must keep pixels in box, got %v", v)
		}
	}
}

func TestRandomUniformBarelyHurts(t *testing.T) {
	m, x, y := setup(t)
	o := &ClearOracle{M: m}
	r := &RandomUniform{Eps: 0.1, Seed: 9}
	xadv, err := r.Perturb(o, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if ra := robustAccuracy(t, o, xadv, y); ra < 0.7 {
		t.Fatalf("random noise robust accuracy %.2f, should stay high", ra)
	}
}

func TestShieldedOracleBlocksPGD(t *testing.T) {
	m, x, y := setup(t)
	clear := &ClearOracle{M: m}
	sm, err := core.NewShieldedModel(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	shielded, err := NewShieldedOracle(sm, 11)
	if err != nil {
		t.Fatal(err)
	}
	pgd := &PGD{Eps: 0.1, Step: 0.0125, Steps: 20}
	xClear, err := pgd.Perturb(clear, x, y)
	if err != nil {
		t.Fatal(err)
	}
	xShield, err := pgd.Perturb(shielded, x, y)
	if err != nil {
		t.Fatal(err)
	}
	raClear := robustAccuracy(t, clear, xClear, y)
	raShield := robustAccuracy(t, clear, xShield, y)
	// The headline result: shielding restores astuteness.
	if raShield < raClear+0.3 {
		t.Fatalf("shielded robust accuracy %.2f vs clear %.2f — shield ineffective", raShield, raClear)
	}
	if raShield < 0.6 {
		t.Fatalf("shielded robust accuracy %.2f, want near-clean levels", raShield)
	}
}

func TestShieldedOracleNeverSeesInputGradient(t *testing.T) {
	m, x, y := setup(t)
	sm, err := core.NewShieldedModel(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewShieldedOracle(sm, 12)
	if err != nil {
		t.Fatal(err)
	}
	sub := x.Slice(0).Reshape(1, 3, 16, 16)
	surrogate, _, err := o.GradCE(sub, y[:1])
	if err != nil {
		t.Fatal(err)
	}
	trueGrad, _, err := (&ClearOracle{M: m}).GradCE(sub, y[:1])
	if err != nil {
		t.Fatal(err)
	}
	// The surrogate must be input-shaped but essentially uncorrelated with
	// the true gradient direction (cosine similarity ≈ 0).
	if !surrogate.SameShape(trueGrad) {
		t.Fatalf("surrogate shape %v vs %v", surrogate.Shape(), trueGrad.Shape())
	}
	cos := tensor.Dot(surrogate, trueGrad) / (tensor.NormL2(surrogate)*tensor.NormL2(trueGrad) + 1e-12)
	if math.Abs(cos) > 0.5 {
		t.Fatalf("surrogate gradient suspiciously aligned with ∇xL: cos=%.3f", cos)
	}
}

func TestUpsamplerShapes(t *testing.T) {
	tests := []struct {
		name     string
		adjShape []int
		input    []int
	}{
		{"vit-tokens", []int{2, 17, 48}, []int{3, 16, 16}},
		{"conv-same", []int{2, 8, 16, 16}, []int{3, 16, 16}},
		{"conv-padded", []int{2, 8, 18, 18}, []int{3, 16, 16}},
		{"conv-strided", []int{2, 8, 8, 8}, []int{3, 16, 16}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			up, err := NewUpsampler(tt.adjShape, tt.input, 1)
			if err != nil {
				t.Fatal(err)
			}
			adj := tensor.NewRNG(2).Normal(0, 1, tt.adjShape...)
			out, err := up.Apply(adj)
			if err != nil {
				t.Fatal(err)
			}
			want := append([]int{tt.adjShape[0]}, tt.input...)
			for i, d := range out.Shape() {
				if d != want[i] {
					t.Fatalf("out shape = %v, want %v", out.Shape(), want)
				}
			}
			if tensor.NormL2(out) == 0 {
				t.Fatal("upsampled gradient is zero")
			}
		})
	}
}

func TestUpsamplerRejectsBadShapes(t *testing.T) {
	if _, err := NewUpsampler([]int{2, 7, 48}, []int{3, 16, 16}, 1); err == nil {
		t.Fatal("non-square token grid must fail")
	}
	if _, err := NewUpsampler([]int{2, 3}, []int{3, 16, 16}, 1); err == nil {
		t.Fatal("rank-2 adjoint must fail")
	}
}

func TestCWMarginSaturationGradCW(t *testing.T) {
	m, x, y := setup(t)
	o := &ClearOracle{M: m}
	grad, obj, err := o.GradCW(x, y, x, 0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if grad.Len() != x.Len() {
		t.Fatalf("grad len %d", grad.Len())
	}
	// At x == x0 the l2 term is zero, so obj equals the margin sum, which
	// is positive for correctly classified samples.
	if obj <= 0 {
		t.Fatalf("objective = %v, want positive margins at clean samples", obj)
	}
}

func TestAttackInputValidation(t *testing.T) {
	m, _, _ := setup(t)
	o := &ClearOracle{M: m}
	bad := tensor.New(2, 3, 16) // rank 3
	if _, err := (&FGSM{Eps: 0.01}).Perturb(o, bad, []int{0, 1}); err == nil {
		t.Fatal("rank-3 batch must fail")
	}
	good := tensor.New(2, 3, 16, 16)
	if _, err := (&PGD{Eps: 0.01, Steps: 1, Step: 0.01}).Perturb(o, good, []int{0}); err == nil {
		t.Fatal("label-count mismatch must fail")
	}
}
