package attack

import (
	"math"

	"pelta/internal/tensor"
)

// APGD is Auto-PGD [61]: PGD with an adaptive step-size schedule, a
// momentum term, and restarts from the best point found so far. The step is
// halved at checkpoints when fewer than ρ of the steps since the previous
// checkpoint increased the objective, or when both the step size and the
// best loss stagnated.
type APGD struct {
	Eps      float32
	Steps    int
	Rho      float64 // checkpoint success-ratio threshold (0.75 in Table II)
	Restarts int     // random restarts (N_restarts = 1 in Table II)
	Seed     int64
}

var _ Attack = (*APGD)(nil)

// Name implements Attack.
func (a *APGD) Name() string { return "APGD" }

// momentum coefficient of the x-update (α in Croce & Hein).
const apgdAlpha = 0.75

// Perturb implements Attack.
func (a *APGD) Perturb(o Oracle, x *tensor.Tensor, y []int) (*tensor.Tensor, error) {
	if err := checkBatch(x, y); err != nil {
		return nil, err
	}
	restarts := a.Restarts
	if restarts < 1 {
		restarts = 1
	}
	best := x.Clone()
	bestLoss := make([]float64, len(y))
	for i := range bestLoss {
		bestLoss[i] = math.Inf(-1)
	}
	for r := 0; r < restarts; r++ {
		xr, lossR, err := a.run(o, x, y, a.Seed+int64(r))
		if err != nil {
			return nil, err
		}
		for i := range y {
			if lossR[i] > bestLoss[i] {
				bestLoss[i] = lossR[i]
				best.Slice(i).CopyFrom(xr.Slice(i))
			}
		}
	}
	return best, nil
}

// checkpoints returns the Croce-Hein checkpoint iteration indices.
func (a *APGD) checkpoints() []int {
	var ws []int
	p0, p1 := 0.0, 0.22
	ws = append(ws, 0, int(math.Ceil(p1*float64(a.Steps))))
	for ws[len(ws)-1] < a.Steps {
		pNext := p1 + math.Max(p1-p0-0.03, 0.06)
		p0, p1 = p1, pNext
		w := int(math.Ceil(p1 * float64(a.Steps)))
		if w <= ws[len(ws)-1] {
			w = ws[len(ws)-1] + 1
		}
		ws = append(ws, w)
	}
	return ws
}

// run executes one APGD restart. Every iteration issues exactly one fused
// gradient query: GradCE returns both the step direction for the next
// iterate and the per-sample losses used by the checkpoint bookkeeping, so
// the separate loss-probing forward pass of the textbook formulation
// disappears. The visited iterates, losses and returned adversarial batch
// are identical to the two-pass formulation.
func (a *APGD) run(o Oracle, x0 *tensor.Tensor, y []int, seed int64) (*tensor.Tensor, []float64, error) {
	b := len(y)
	n := x0.Len() / b
	rng := tensor.NewRNG(seed)

	// Random start inside the ball.
	x := x0.Clone()
	tensor.AddIn(x, rng.Uniform(-float64(a.Eps), float64(a.Eps), x0.Shape()...))
	projectLinf(x, x0, a.Eps)
	xPrev := x.Clone()

	grad, loss, err := o.GradCE(x, y)
	if err != nil {
		return nil, nil, err
	}
	loss = append([]float64(nil), loss...)
	xBest := x.Clone()
	lossBest := append([]float64(nil), loss...)

	eta := make([]float32, b)
	for i := range eta {
		eta[i] = 2 * a.Eps
	}
	improved := make([]int, b)                          // improving steps since last checkpoint
	lossBestPrev := append([]float64(nil), lossBest...) // best at last checkpoint
	etaPrev := append([]float32(nil), eta...)

	cps := a.checkpoints()
	nextCP := 1

	z := tensor.New(x.Shape()...)
	for k := 0; k < a.Steps; k++ {
		// z = P(x + η·sign(grad)); x⁺ = P(x + α(z−x) + (1−α)(x−x_prev))
		z.CopyFrom(x)
		gd, zd := grad.Data(), z.Data()
		for i := range zd {
			s := eta[i/n]
			switch {
			case gd[i] > 0:
				zd[i] += s
			case gd[i] < 0:
				zd[i] -= s
			}
		}
		projectLinf(z, x0, a.Eps)
		xNew := xPrev // recycle the oldest iterate's buffer
		xd, xpd, xnd := x.Data(), xPrev.Data(), xNew.Data()
		for i := range xnd {
			xnd[i] = xd[i] + apgdAlpha*(zd[i]-xd[i]) + (1-apgdAlpha)*(xd[i]-xpd[i])
		}
		projectLinf(xNew, x0, a.Eps)
		xPrev = x
		x = xNew

		// One fused query: the loss at the fresh iterate for bookkeeping
		// and its gradient for the next step.
		g2, newLoss, err := o.GradCE(x, y)
		if err != nil {
			return nil, nil, err
		}
		grad = g2
		for i := range y {
			if newLoss[i] > loss[i] {
				improved[i]++
			}
			if newLoss[i] > lossBest[i] {
				lossBest[i] = newLoss[i]
				xBest.Slice(i).CopyFrom(x.Slice(i))
			}
			loss[i] = newLoss[i]
		}

		if nextCP < len(cps) && k+1 == cps[nextCP] {
			span := cps[nextCP] - cps[nextCP-1]
			restarted := false
			for i := range y {
				cond1 := float64(improved[i]) < a.Rho*float64(span)
				cond2 := etaPrev[i] == eta[i] && lossBestPrev[i] == lossBest[i]
				if cond1 || cond2 {
					eta[i] /= 2
					// Restart this sample from its best point.
					x.Slice(i).CopyFrom(xBest.Slice(i))
					xPrev.Slice(i).CopyFrom(xBest.Slice(i))
					restarted = true
				}
				improved[i] = 0
				etaPrev[i] = eta[i]
				lossBestPrev[i] = lossBest[i]
			}
			if restarted && k+1 < a.Steps {
				// The cached gradient belongs to the abandoned iterate;
				// refresh it at the (partially) restarted point. The stale
				// bookkeeping loss is kept, exactly as in the two-pass
				// formulation.
				if grad, _, err = o.GradCE(x, y); err != nil {
					return nil, nil, err
				}
			}
			nextCP++
		}
	}
	return xBest, lossBest, nil
}
