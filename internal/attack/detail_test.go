package attack

import (
	"math"
	"testing"

	"pelta/internal/tensor"
)

// constOracle returns a fixed gradient, for testing attack mechanics in
// isolation from any model.
type constOracle struct {
	grad   *tensor.Tensor
	logits *tensor.Tensor
}

func (o *constOracle) Name() string      { return "const" }
func (o *constOracle) InputShape() []int { return o.grad.Shape()[1:] }
func (o *constOracle) Classes() int      { return o.logits.Dim(1) }
func (o *constOracle) Logits(x *tensor.Tensor) (*tensor.Tensor, error) {
	return o.logits.Clone(), nil
}
func (o *constOracle) GradCE(x *tensor.Tensor, y []int) (*tensor.Tensor, []float64, error) {
	return o.grad.Clone(), make([]float64, len(y)), nil
}
func (o *constOracle) GradCW(x *tensor.Tensor, y []int, x0 *tensor.Tensor, kappa, c float32) (*tensor.Tensor, float64, error) {
	return o.grad.Clone(), 1, nil
}

func fixedOracle(b int) *constOracle {
	grad := tensor.New(b, 1, 2, 2)
	for i := range grad.Data() {
		if i%2 == 0 {
			grad.Data()[i] = 1
		} else {
			grad.Data()[i] = -1
		}
	}
	logits := tensor.New(b, 3)
	for i := 0; i < b; i++ {
		logits.Set(1, i, 0)
	}
	return &constOracle{grad: grad, logits: logits}
}

func TestFGSMStepGeometry(t *testing.T) {
	o := fixedOracle(1)
	x := tensor.Full(0.5, 1, 1, 2, 2)
	xadv, err := (&FGSM{Eps: 0.1}).Perturb(o, x, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{0.6, 0.4, 0.6, 0.4}
	for i, v := range xadv.Data() {
		if math.Abs(float64(v-want[i])) > 1e-6 {
			t.Fatalf("xadv = %v, want %v", xadv.Data(), want)
		}
	}
}

func TestPGDStaysOnBallFaceWithConstantGradient(t *testing.T) {
	o := fixedOracle(1)
	x := tensor.Full(0.5, 1, 1, 2, 2)
	xadv, err := (&PGD{Eps: 0.08, Step: 0.05, Steps: 10}).Perturb(o, x, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	// A constant gradient drives every pixel to the ε face.
	for i, v := range xadv.Data() {
		want := float32(0.58)
		if i%2 == 1 {
			want = 0.42
		}
		if math.Abs(float64(v-want)) > 1e-6 {
			t.Fatalf("pixel %d = %v, want %v", i, v, want)
		}
	}
}

func TestMIMVelocityPersistsThroughZeroGradient(t *testing.T) {
	// After accumulating momentum, a zero gradient step still moves along
	// the velocity (the point of MIM).
	calls := 0
	o := &switchOracle{
		fn: func() *tensor.Tensor {
			calls++
			g := tensor.New(1, 1, 2, 2)
			if calls <= 2 {
				g.Fill(1)
			}
			return g
		},
	}
	x := tensor.Full(0.5, 1, 1, 2, 2)
	xadv, err := (&MIM{Eps: 0.3, Step: 0.05, Steps: 4, Mu: 1}).Perturb(o, x, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	// 4 steps of +0.05 each (velocity never dies with µ=1).
	for _, v := range xadv.Data() {
		if math.Abs(float64(v)-0.7) > 1e-5 {
			t.Fatalf("pixel = %v, want 0.7", v)
		}
	}
}

type switchOracle struct {
	fn func() *tensor.Tensor
}

func (o *switchOracle) Name() string      { return "switch" }
func (o *switchOracle) InputShape() []int { return []int{1, 2, 2} }
func (o *switchOracle) Classes() int      { return 2 }
func (o *switchOracle) Logits(x *tensor.Tensor) (*tensor.Tensor, error) {
	l := tensor.New(x.Dim(0), 2)
	return l, nil
}
func (o *switchOracle) GradCE(x *tensor.Tensor, y []int) (*tensor.Tensor, []float64, error) {
	return o.fn(), make([]float64, len(y)), nil
}
func (o *switchOracle) GradCW(x *tensor.Tensor, y []int, x0 *tensor.Tensor, kappa, c float32) (*tensor.Tensor, float64, error) {
	return o.fn(), 1, nil
}

func TestUpsamplerDeterministicPerSeed(t *testing.T) {
	adj := tensor.NewRNG(1).Normal(0, 1, 1, 17, 48)
	u1, err := NewUpsampler([]int{1, 17, 48}, []int{3, 16, 16}, 9)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := NewUpsampler([]int{1, 17, 48}, []int{3, 16, 16}, 9)
	if err != nil {
		t.Fatal(err)
	}
	a, err := u1.Apply(adj)
	if err != nil {
		t.Fatal(err)
	}
	b, err := u2.Apply(adj)
	if err != nil {
		t.Fatal(err)
	}
	if !a.AllClose(b, 0) {
		t.Fatal("same seed must give the same kernel")
	}
	u3, err := NewUpsampler([]int{1, 17, 48}, []int{3, 16, 16}, 10)
	if err != nil {
		t.Fatal(err)
	}
	c, err := u3.Apply(adj)
	if err != nil {
		t.Fatal(err)
	}
	if a.AllClose(c, 1e-9) {
		t.Fatal("different seeds should give different kernels")
	}
}

func TestUpsamplerLinearity(t *testing.T) {
	// The transposed convolution is linear: Apply(2a) == 2·Apply(a).
	u, err := NewUpsampler([]int{1, 8, 4, 4}, []int{3, 16, 16}, 2)
	if err != nil {
		t.Fatal(err)
	}
	adj := tensor.NewRNG(3).Normal(0, 1, 1, 8, 4, 4)
	a, err := u.Apply(adj)
	if err != nil {
		t.Fatal(err)
	}
	b, err := u.Apply(tensor.Scale(adj, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !b.AllClose(tensor.Scale(a, 2), 1e-4) {
		t.Fatal("upsampler must be linear in the adjoint")
	}
}

func TestSuccessMaskCounts(t *testing.T) {
	o := fixedOracle(3) // always predicts class 0
	x := tensor.New(3, 1, 2, 2)
	mask, err := SuccessMask(o, x, []int{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if mask[0] || !mask[1] || mask[2] {
		t.Fatalf("mask = %v", mask)
	}
}

func TestPerSampleCEMatchesDefinition(t *testing.T) {
	logits := tensor.FromSlice([]float32{2, 0, 0, 0, 3, 0}, 2, 3)
	o := &constOracle{grad: tensor.New(2, 1, 1, 1), logits: logits}
	losses, err := perSampleCE(o, tensor.New(2, 1, 1, 1), []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Sample 0: -log(e²/(e²+2)) ; sample 1: -log(1/(e³+2)).
	want0 := -math.Log(math.Exp(2) / (math.Exp(2) + 2))
	want1 := -math.Log(1 / (math.Exp(3) + 2))
	if math.Abs(losses[0]-want0) > 1e-4 || math.Abs(losses[1]-want1) > 1e-4 {
		t.Fatalf("losses = %v, want [%v %v]", losses, want0, want1)
	}
}
