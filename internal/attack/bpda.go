package attack

import (
	"fmt"
	"math"

	"pelta/internal/tensor"
)

// Upsampler maps the adjoint δ_{L+1} of the last clear layer back to the
// input shape with a transposed convolution whose kernel is initialized
// random-uniform (§V-B). It is the BPDA-style last resort of an attacker
// facing Pelta: a geometric transformation of the under-factored gradient,
// with no guarantee of pointing along ∇xL.
type Upsampler struct {
	srcShape []int // adjoint shape without batch: [T,D] or [C,h,w]
	dstC     int
	dstH     int
	dstW     int

	kernel *tensor.Tensor // [C_src, dstC, k, k]
	stride int
	// vit marks a token-shaped adjoint ([B,T,D]) that must be re-arranged
	// into a patch grid before upsampling.
	vit  bool
	grid int // √(T−1) for vit adjoints

	// pool feeds the transposed-convolution scratch (and the vit patch-grid
	// buffer), making repeated Apply calls allocation-light on the attack
	// hot path. Upsamplers are per-worker, so the pool stays uncontended.
	pool *tensor.Pool
}

// NewUpsampler builds an upsampler from the adjoint shape (including batch
// dim) to input shape [C,H,W].
func NewUpsampler(adjointShape, inputShape []int, seed int64) (*Upsampler, error) {
	if len(inputShape) != 3 {
		return nil, fmt.Errorf("attack: input shape %v must be [C,H,W]", inputShape)
	}
	u := &Upsampler{dstC: inputShape[0], dstH: inputShape[1], dstW: inputShape[2], pool: tensor.NewPool()}
	rng := tensor.NewRNG(seed)
	switch len(adjointShape) {
	case 3: // [B, T, D] — ViT boundary z0
		t, d := adjointShape[1], adjointShape[2]
		grid := int(math.Round(math.Sqrt(float64(t - 1))))
		if grid*grid != t-1 {
			return nil, fmt.Errorf("attack: token count %d is not a square grid + class token", t)
		}
		u.vit = true
		u.grid = grid
		u.srcShape = []int{t, d}
		u.stride = u.dstH / grid
		if u.stride < 1 {
			u.stride = 1
		}
		k := u.stride
		bound := 1 / math.Sqrt(float64(d*k*k))
		u.kernel = rng.Uniform(-bound, bound, d, u.dstC, k, k)
	case 4: // [B, C, h, w] — convolutional boundary
		c, h := adjointShape[1], adjointShape[2]
		u.srcShape = adjointShape[1:]
		u.stride = u.dstH / h
		if u.stride < 1 {
			u.stride = 1
		}
		k := u.stride
		if k < 3 {
			k = 3
		}
		bound := 1 / math.Sqrt(float64(c*k*k))
		u.kernel = rng.Uniform(-bound, bound, c, u.dstC, k, k)
	default:
		return nil, fmt.Errorf("attack: unsupported adjoint shape %v", adjointShape)
	}
	return u, nil
}

// Apply upsamples a batched adjoint to [B, C, H, W].
func (u *Upsampler) Apply(adj *tensor.Tensor) (*tensor.Tensor, error) {
	var x4 *tensor.Tensor
	borrowed := false
	switch {
	case u.vit:
		if adj.Rank() != 3 {
			return nil, fmt.Errorf("attack: expected [B,T,D] adjoint, got %v", adj.Shape())
		}
		x4 = u.tokensToGrid(adj)
		borrowed = true
	default:
		if adj.Rank() != 4 {
			return nil, fmt.Errorf("attack: expected [B,C,h,w] adjoint, got %v", adj.Shape())
		}
		x4 = adj
	}
	k := u.kernel.Dim(2)
	oh := (x4.Dim(2)-1)*u.stride + k
	ow := (x4.Dim(3)-1)*u.stride + u.kernel.Dim(3)
	up := tensor.New(x4.Dim(0), u.kernel.Dim(1), oh, ow)
	tensor.ConvTranspose2dInto(u.pool, up, x4, u.kernel, u.stride, 0)
	if borrowed {
		u.pool.Put(x4)
	}
	return fitSpatial(up, u.dstH, u.dstW), nil
}

// tokensToGrid drops the class token and lays the patch tokens out as a
// [B, D, grid, grid] feature map, borrowed from the upsampler's pool (every
// element is overwritten).
func (u *Upsampler) tokensToGrid(adj *tensor.Tensor) *tensor.Tensor {
	b, t, d := adj.Dim(0), adj.Dim(1), adj.Dim(2)
	out := u.pool.Get(b, d, u.grid, u.grid)
	for i := 0; i < b; i++ {
		src := adj.Slice(i) // [T, D]
		dst := out.Slice(i) // [D, g, g]
		for tok := 1; tok < t; tok++ {
			py, px := (tok-1)/u.grid, (tok-1)%u.grid
			for ch := 0; ch < d; ch++ {
				dst.Data()[ch*u.grid*u.grid+py*u.grid+px] = src.Data()[tok*d+ch]
			}
		}
	}
	return out
}

// fitSpatial center-crops or zero-pads the spatial dims to (H, W).
func fitSpatial(x *tensor.Tensor, H, W int) *tensor.Tensor {
	b, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if h == H && w == W {
		return x
	}
	out := tensor.New(b, c, H, W)
	dy := (h - H) / 2
	dx := (w - W) / 2
	for i := 0; i < b; i++ {
		src, dst := x.Slice(i), out.Slice(i)
		for ch := 0; ch < c; ch++ {
			for y := 0; y < H; y++ {
				sy := y + dy
				if sy < 0 || sy >= h {
					continue
				}
				for xx := 0; xx < W; xx++ {
					sx := xx + dx
					if sx < 0 || sx >= w {
						continue
					}
					dst.Data()[ch*H*W+y*W+xx] = src.Data()[ch*h*w+sy*w+sx]
				}
			}
		}
	}
	return out
}
