package attack

import (
	"math"

	"pelta/internal/tensor"
)

// FGSM is the Fast Gradient Sign Method [17]: a single ε-step along the
// sign of ∇xL.
type FGSM struct {
	Eps float32
	// Targeted interprets y as target classes and descends their loss
	// (the targeted variant; the paper evaluates the non-targeted one).
	Targeted bool
}

var _ Attack = (*FGSM)(nil)

// Name implements Attack.
func (a *FGSM) Name() string { return "FGSM" }

// Perturb implements Attack: x_adv = clip(x0 ± ε·sign(∇xL(x0, y))).
func (a *FGSM) Perturb(o Oracle, x *tensor.Tensor, y []int) (*tensor.Tensor, error) {
	if err := checkBatch(x, y); err != nil {
		return nil, err
	}
	grad, _, err := o.GradCE(x, y)
	if err != nil {
		return nil, err
	}
	step := a.Eps
	if a.Targeted {
		step = -step
	}
	xadv := x.Clone()
	addSignStep(xadv, grad, step)
	projectLinf(xadv, x, a.Eps)
	return xadv, nil
}

// PGD is Projected Gradient Descent [59]: the multi-step FGSM variant with
// projection back into the ε-ball after every step.
type PGD struct {
	Eps       float32
	Step      float32
	Steps     int
	RandStart bool
	Seed      int64
	// Targeted interprets y as target classes and descends their loss.
	Targeted bool
}

var _ Attack = (*PGD)(nil)

// Name implements Attack.
func (a *PGD) Name() string { return "PGD" }

// Perturb implements Attack.
func (a *PGD) Perturb(o Oracle, x *tensor.Tensor, y []int) (*tensor.Tensor, error) {
	if err := checkBatch(x, y); err != nil {
		return nil, err
	}
	xadv := x.Clone()
	if a.RandStart {
		rng := tensor.NewRNG(a.Seed)
		noise := rng.Uniform(-float64(a.Eps), float64(a.Eps), x.Shape()...)
		tensor.AddIn(xadv, noise)
		projectLinf(xadv, x, a.Eps)
	}
	step := a.Step
	if a.Targeted {
		step = -step
	}
	for i := 0; i < a.Steps; i++ {
		grad, _, err := o.GradCE(xadv, y)
		if err != nil {
			return nil, err
		}
		addSignStep(xadv, grad, step)
		projectLinf(xadv, x, a.Eps)
	}
	return xadv, nil
}

// MIM is the Momentum Iterative Method [60]: gradient steps with an
// l1-normalized velocity term g_µ accumulated across iterations.
type MIM struct {
	Eps   float32
	Step  float32
	Steps int
	Mu    float32
}

var _ Attack = (*MIM)(nil)

// Name implements Attack.
func (a *MIM) Name() string { return "MIM" }

// Perturb implements Attack.
func (a *MIM) Perturb(o Oracle, x *tensor.Tensor, y []int) (*tensor.Tensor, error) {
	if err := checkBatch(x, y); err != nil {
		return nil, err
	}
	xadv := x.Clone()
	velocity := tensor.New(x.Shape()...)
	b := x.Dim(0)
	sample := x.Len() / b
	for i := 0; i < a.Steps; i++ {
		grad, _, err := o.GradCE(xadv, y)
		if err != nil {
			return nil, err
		}
		// Per-sample l1 normalization before the momentum update.
		gd, vd := grad.Data(), velocity.Data()
		for s := 0; s < b; s++ {
			seg := gd[s*sample : (s+1)*sample]
			var l1 float64
			for _, v := range seg {
				l1 += math.Abs(float64(v))
			}
			if l1 < 1e-12 {
				l1 = 1e-12
			}
			inv := float32(1 / l1)
			for j, v := range seg {
				vd[s*sample+j] = a.Mu*vd[s*sample+j] + v*inv
			}
		}
		addSignStep(xadv, velocity, a.Step)
		projectLinf(xadv, x, a.Eps)
	}
	return xadv, nil
}

// RandomUniform is the baseline of Table IV: a single uniform perturbation
// on the surface of the l∞ ε-ball, no gradient information at all.
type RandomUniform struct {
	Eps  float32
	Seed int64
}

var _ Attack = (*RandomUniform)(nil)

// Name implements Attack.
func (a *RandomUniform) Name() string { return "Random" }

// Perturb implements Attack.
func (a *RandomUniform) Perturb(_ Oracle, x *tensor.Tensor, y []int) (*tensor.Tensor, error) {
	if err := checkBatch(x, y); err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(a.Seed)
	xadv := x.Clone()
	noise := rng.Uniform(-float64(a.Eps), float64(a.Eps), x.Shape()...)
	tensor.AddIn(xadv, noise)
	projectLinf(xadv, x, a.Eps)
	return xadv, nil
}
