// Package attack implements the six white-box evasion attacks of the
// paper's evaluation — FGSM, PGD, MIM, APGD, C&W and SAGA — plus the
// random-uniform baseline, against both clear models (full white-box) and
// Pelta-shielded models (restricted white-box).
//
// Attacks consume a gradient Oracle. The clear oracle returns the true
// ∇xL; the shielded oracle can only observe the adjoint δ_{L+1} of the
// shallowest clear layer and substitutes a BPDA-style transposed-convolution
// upsampling for the masked shallow backward (§IV-C, §V-B).
//
// Oracles run on the pooled execution engine: each oracle owns a
// tensor.Pool-backed graph arena that is recycled wholesale between queries,
// so the hundreds of gradient queries of an iterative attack are
// allocation-free in steady state. The price of reuse is a lifetime rule —
// tensors returned by an oracle are valid only until its next query; callers
// that need them longer must Clone them.
//
// RecordingOracle wraps any oracle and clones every queried sample, turning
// an attack run into the query stream a serving defender would have seen —
// the trace source of the internal/serve probe-detection harness.
package attack
