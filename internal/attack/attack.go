package attack

import (
	"fmt"

	"pelta/internal/tensor"
)

// Attack perturbs correctly classified samples into adversarial candidates.
// Implementations follow the non-targeted versions described in §V-B.
type Attack interface {
	// Name returns the attack label used in the tables.
	Name() string
	// Perturb returns adversarial examples for a batch x [B,C,H,W] with
	// true labels y, staying inside the attack's norm ball around x and
	// inside the pixel box [0,1].
	Perturb(o Oracle, x *tensor.Tensor, y []int) (*tensor.Tensor, error)
}

// projectLinf clips xadv into the ε-ball around x0 (l∞) and into [0,1] —
// the P operator of Fig. 3.
func projectLinf(xadv, x0 *tensor.Tensor, eps float32) {
	a, o := xadv.Data(), x0.Data()
	for i := range a {
		lo, hi := o[i]-eps, o[i]+eps
		if a[i] < lo {
			a[i] = lo
		}
		if a[i] > hi {
			a[i] = hi
		}
		if a[i] < 0 {
			a[i] = 0
		}
		if a[i] > 1 {
			a[i] = 1
		}
	}
}

// addSignStep performs x += step·sign(g) in place.
func addSignStep(x *tensor.Tensor, g *tensor.Tensor, step float32) {
	xd, gd := x.Data(), g.Data()
	for i := range xd {
		switch {
		case gd[i] > 0:
			xd[i] += step
		case gd[i] < 0:
			xd[i] -= step
		}
	}
}

// checkBatch validates attack inputs.
func checkBatch(x *tensor.Tensor, y []int) error {
	if x.Rank() != 4 {
		return fmt.Errorf("attack: batch must be [B,C,H,W], got %v", x.Shape())
	}
	if x.Dim(0) != len(y) {
		return fmt.Errorf("attack: %d samples but %d labels", x.Dim(0), len(y))
	}
	return nil
}

// SuccessMask reports which samples an oracle now misclassifies.
func SuccessMask(o Oracle, xadv *tensor.Tensor, y []int) ([]bool, error) {
	pred, err := PredictOracle(o, xadv)
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(y))
	for i := range y {
		out[i] = pred[i] != y[i]
	}
	return out, nil
}
