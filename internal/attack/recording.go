package attack

import (
	"fmt"

	"pelta/internal/tensor"
)

// RecordingOracle wraps an Oracle and keeps a copy of every queried sample,
// in query order. It models the service-side view of an attack: each oracle
// query — forward or gradient — is one probe the defender's detector gets
// to see, so a recorded attack run replays as a detection trace
// (serve.QueryStream) without re-implementing the attack loop.
//
// Batched queries are recorded row by row, matching the one-sample-per-
// request serving surface. Rows are cloned, so the recording survives the
// oracle overwriting its buffers on the next query.
type RecordingOracle struct {
	inner   Oracle
	queries []*tensor.Tensor
}

var _ Oracle = (*RecordingOracle)(nil)
var _ RolloutGradOracle = (*RecordingOracle)(nil)

// Record wraps o so every queried sample is retained.
func Record(o Oracle) *RecordingOracle { return &RecordingOracle{inner: o} }

// Queries returns the recorded samples in query order. The slice is the
// recorder's own; callers must not mutate the tensors.
func (r *RecordingOracle) Queries() []*tensor.Tensor { return r.queries }

// Reset drops the recording (the wrapped oracle is untouched).
func (r *RecordingOracle) Reset() { r.queries = nil }

// record clones each row of a possibly batched query.
func (r *RecordingOracle) record(x *tensor.Tensor) {
	if x.Rank() == len(r.inner.InputShape())+1 {
		for i := 0; i < x.Dim(0); i++ {
			r.queries = append(r.queries, x.Slice(i).Clone())
		}
		return
	}
	r.queries = append(r.queries, x.Clone())
}

// Name implements Oracle.
func (r *RecordingOracle) Name() string { return r.inner.Name() }

// InputShape implements Oracle.
func (r *RecordingOracle) InputShape() []int { return r.inner.InputShape() }

// Classes implements Oracle.
func (r *RecordingOracle) Classes() int { return r.inner.Classes() }

// Logits implements Oracle.
func (r *RecordingOracle) Logits(x *tensor.Tensor) (*tensor.Tensor, error) {
	r.record(x)
	return r.inner.Logits(x)
}

// GradCE implements Oracle.
func (r *RecordingOracle) GradCE(x *tensor.Tensor, y []int) (*tensor.Tensor, []float64, error) {
	r.record(x)
	return r.inner.GradCE(x, y)
}

// GradCW implements Oracle.
func (r *RecordingOracle) GradCW(x *tensor.Tensor, y []int, x0 *tensor.Tensor, kappa, c float32) (*tensor.Tensor, float64, error) {
	r.record(x)
	return r.inner.GradCW(x, y, x0, kappa, c)
}

// CanRollout implements RolloutGradOracle by delegation: true only when
// the wrapped oracle itself serves rollouts.
func (r *RecordingOracle) CanRollout() bool {
	ro, ok := r.inner.(RolloutGradOracle)
	return ok && ro.CanRollout()
}

// GradCERollout implements RolloutGradOracle by delegation.
func (r *RecordingOracle) GradCERollout(x *tensor.Tensor, y []int) (*tensor.Tensor, *tensor.Tensor, []float64, error) {
	ro, ok := r.inner.(RolloutGradOracle)
	if !ok {
		return nil, nil, nil, fmt.Errorf("attack: %s serves no rollouts", r.inner.Name())
	}
	r.record(x)
	return ro.GradCERollout(x, y)
}
