package attack

import (
	"math"

	"pelta/internal/tensor"
)

// Square is a score-based black-box attack in the spirit of Andriushchenko
// et al. (2020): random square perturbations accepted whenever they
// increase the per-sample loss, using only the model's output scores.
//
// It is included as the paper's negative control (§II): Pelta "provides no
// defense capabilities against black-box attacks since they operate in a
// setting that already assumes complete obfuscation of the model's
// quantities" — a shielded model is exactly as vulnerable as a clear one.
type Square struct {
	Eps float32
	// Queries bounds the number of forward evaluations per batch.
	Queries int
	// PInit is the initial fraction of the image covered by the square
	// (0.1 in the original paper).
	PInit float64
	Seed  int64
}

var _ Attack = (*Square)(nil)

// Name implements Attack.
func (a *Square) Name() string { return "Square" }

// pSchedule halves the square area at the original attack's breakpoints.
func (a *Square) pSchedule(iter int) float64 {
	frac := float64(iter) / float64(a.Queries)
	p := a.PInit
	for _, bp := range []float64{0.05, 0.1, 0.2, 0.5, 0.8} {
		if frac > bp {
			p /= 2
		}
	}
	return p
}

// Perturb implements Attack using only Logits queries.
func (a *Square) Perturb(o Oracle, x *tensor.Tensor, y []int) (*tensor.Tensor, error) {
	if err := checkBatch(x, y); err != nil {
		return nil, err
	}
	pInit := a.PInit
	if pInit == 0 {
		pInit = 0.3
	}
	a.PInit = pInit
	rng := tensor.NewRNG(a.Seed)
	b, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)

	// Vertical-stripe initialization on the ball surface.
	xadv := x.Clone()
	for i := 0; i < b; i++ {
		xi := xadv.Slice(i)
		for ch := 0; ch < c; ch++ {
			for col := 0; col < w; col++ {
				s := float32(1)
				if rng.Intn(2) == 0 {
					s = -1
				}
				for row := 0; row < h; row++ {
					xi.Data()[ch*h*w+row*w+col] += s * a.Eps
				}
			}
		}
	}
	projectLinf(xadv, x, a.Eps)
	loss, err := perSampleCE(o, xadv, y)
	if err != nil {
		return nil, err
	}

	for q := 1; q < a.Queries; q++ {
		side := int(math.Sqrt(a.pSchedule(q) * float64(h*w)))
		if side < 1 {
			side = 1
		}
		if side > h {
			side = h
		}
		cand := xadv.Clone()
		for i := 0; i < b; i++ {
			row := rng.Intn(h - side + 1)
			col := rng.Intn(w - side + 1)
			ci := cand.Slice(i)
			oi := x.Slice(i)
			for ch := 0; ch < c; ch++ {
				s := float32(1)
				if rng.Intn(2) == 0 {
					s = -1
				}
				for dy := 0; dy < side; dy++ {
					for dx := 0; dx < side; dx++ {
						off := ch*h*w + (row+dy)*w + col + dx
						// Jump to the opposite ball face inside the square.
						ci.Data()[off] = oi.Data()[off] + s*a.Eps
					}
				}
			}
		}
		projectLinf(cand, x, a.Eps)
		candLoss, err := perSampleCE(o, cand, y)
		if err != nil {
			return nil, err
		}
		for i := 0; i < b; i++ {
			if candLoss[i] > loss[i] {
				loss[i] = candLoss[i]
				xadv.Slice(i).CopyFrom(cand.Slice(i))
			}
		}
	}
	return xadv, nil
}
