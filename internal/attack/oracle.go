package attack

import (
	"fmt"
	"math"

	"pelta/internal/autograd"
	"pelta/internal/core"
	"pelta/internal/models"
	"pelta/internal/tensor"
)

// Oracle answers the gradient queries of an attacker probing its local
// model copy.
//
// Tensors returned by Logits, GradCE and GradCW belong to the oracle and
// are overwritten by its next query (of any kind). Implementations need not
// be safe for concurrent use; fan a batch out with ParallelOracle instead.
type Oracle interface {
	// Name identifies the defender.
	Name() string
	// InputShape returns [C,H,W].
	InputShape() []int
	// Classes returns the label-space size.
	Classes() int
	// Logits runs inference on a batch.
	Logits(x *tensor.Tensor) (*tensor.Tensor, error)
	// GradCE returns the gradient w.r.t. x of the summed cross-entropy
	// loss (the objective of FGSM/PGD/MIM/APGD/SAGA) together with the
	// per-sample losses of the same pass, so adaptive attacks like APGD
	// track progress without a second forward pass.
	GradCE(x *tensor.Tensor, y []int) (*tensor.Tensor, []float64, error)
	// GradCW returns the gradient of the summed C&W objective
	// margin_κ(x,y) + c·‖x−x0‖² and its value.
	GradCW(x *tensor.Tensor, y []int, x0 *tensor.Tensor, kappa, c float32) (*tensor.Tensor, float64, error)
}

// RolloutGradOracle is implemented by oracles that can serve the SAGA
// attention rollout (Eq. 4) from the same pass as the gradient query,
// saving the separate rollout forward.
type RolloutGradOracle interface {
	Oracle
	// CanRollout reports whether the wrapped defender records attention
	// maps (i.e. is a ViT); callers must check it before GradCERollout.
	CanRollout() bool
	// GradCERollout returns ∇x of the summed CE loss, the attention
	// rollout map [B,C,H,W] (before the ⊙x modulation), and the per-sample
	// losses, all from one pass.
	GradCERollout(x *tensor.Tensor, y []int) (grad, rollout *tensor.Tensor, per []float64, err error)
}

// ClearOracle exposes a non-shielded model: the plain white-box of §III.
// The zero value with only M set is ready to use; the arena initializes
// lazily on the first query.
type ClearOracle struct {
	M models.Model

	g *autograd.Graph
	// gradBuf/logitsBuf/rolloutBuf persist across queries so the arena can
	// be released before returning; each is overwritten by the next query
	// of its kind.
	gradBuf    *tensor.Tensor
	logitsBuf  *tensor.Tensor
	rolloutBuf *tensor.Tensor
}

var _ Oracle = (*ClearOracle)(nil)

// NewClearOracle wraps m in a pooled gradient oracle.
func NewClearOracle(m models.Model) *ClearOracle { return &ClearOracle{M: m} }

// arena returns the oracle's reusable graph, recycling the previous pass's
// tensors. Probing must not perturb the defender's optimizer state, so
// parameter-gradient tracking is off — which also skips computing the
// weight-gradient products, roughly halving the backward pass.
func (o *ClearOracle) arena() *autograd.Graph {
	if o.g == nil {
		o.g = autograd.NewGraphWithPool(tensor.NewPool())
		o.g.SetTrackParamGrads(false)
	}
	o.g.Release()
	return o.g
}

// stash copies src into buf (reallocating on shape change) and returns it.
func stash(buf **tensor.Tensor, src *tensor.Tensor) *tensor.Tensor {
	if *buf == nil || !(*buf).SameShape(src) {
		*buf = src.Clone()
	} else {
		(*buf).CopyFrom(src)
	}
	return *buf
}

// Name implements Oracle.
func (o *ClearOracle) Name() string { return o.M.Name() }

// InputShape implements Oracle.
func (o *ClearOracle) InputShape() []int { return o.M.InputShape() }

// Classes implements Oracle.
func (o *ClearOracle) Classes() int { return o.M.Classes() }

// Logits implements Oracle.
func (o *ClearOracle) Logits(x *tensor.Tensor) (*tensor.Tensor, error) {
	g := o.arena()
	_, logits := o.M.Forward(g, g.Input(x, "x"))
	return stash(&o.logitsBuf, logits.Data), nil
}

// GradCE implements Oracle.
func (o *ClearOracle) GradCE(x *tensor.Tensor, y []int) (*tensor.Tensor, []float64, error) {
	g := o.arena()
	in := g.Input(x, "x")
	_, logits := o.M.Forward(g, in)
	loss, info := g.CrossEntropy(logits, y, autograd.ReduceSum)
	g.Backward(loss)
	return stash(&o.gradBuf, in.Grad), info.PerSample, nil
}

// CanRollout implements RolloutGradOracle.
func (o *ClearOracle) CanRollout() bool {
	_, ok := o.M.(*models.ViT)
	return ok
}

// GradCERollout implements RolloutGradOracle for ViT defenders: the
// attention maps recorded during the gradient pass feed the rollout
// directly, so SAGA needs no second forward.
func (o *ClearOracle) GradCERollout(x *tensor.Tensor, y []int) (*tensor.Tensor, *tensor.Tensor, []float64, error) {
	vit, ok := o.M.(*models.ViT)
	if !ok {
		return nil, nil, nil, fmt.Errorf("attack: %s records no attention maps", o.M.Name())
	}
	g := o.arena()
	// The rollout consumes the recorded maps, so opt this pass out of the
	// fused attention fast path.
	g.RequestRecorded(autograd.RecordAttention)
	in := g.Input(x, "x")
	_, logits := o.M.Forward(g, in)
	loss, info := g.CrossEntropy(logits, y, autograd.ReduceSum)
	g.Backward(loss)
	maps := vit.AttentionMaps(g)
	if len(maps) == 0 {
		return nil, nil, nil, fmt.Errorf("attack: ViT recorded no attention maps")
	}
	if o.rolloutBuf == nil || !o.rolloutBuf.SameShape(x) {
		o.rolloutBuf = tensor.New(x.Shape()...)
	}
	if err := RolloutFromMaps(mapData(maps), vit.Cfg.Heads, o.rolloutBuf); err != nil {
		return nil, nil, nil, err
	}
	return stash(&o.gradBuf, in.Grad), o.rolloutBuf, info.PerSample, nil
}

func mapData(maps []*autograd.Value) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(maps))
	for i, m := range maps {
		out[i] = m.Data
	}
	return out
}

// GradCW implements Oracle.
func (o *ClearOracle) GradCW(x *tensor.Tensor, y []int, x0 *tensor.Tensor, kappa, c float32) (*tensor.Tensor, float64, error) {
	g := o.arena()
	in := g.Input(x, "x")
	_, logits := o.M.Forward(g, in)
	obj := g.Add(g.CWMargin(logits, y, kappa), g.Scale(g.SqDistSum(in, x0), c))
	g.Backward(obj)
	return stash(&o.gradBuf, in.Grad), float64(obj.Data.Data()[0]), nil
}

// ShieldedOracle exposes a Pelta-shielded model: gradient queries return the
// upsampled adjoint, never ∇xL. This is the restricted white-box the paper
// evaluates in the right-hand columns of Table III.
type ShieldedOracle struct {
	SM *core.ShieldedModel
	up *Upsampler
	// adjShape is the probed adjoint shape (including batch dim), retained
	// so Reseed can redraw the kernel without another probe pass.
	adjShape []int
}

var _ Oracle = (*ShieldedOracle)(nil)

// NewShieldedOracle builds the attacker's view of sm. seed initializes the
// random-uniform upsampling kernel (§V-B: the attacker has no priors on the
// shielded parameters).
func NewShieldedOracle(sm *core.ShieldedModel, seed int64) (*ShieldedOracle, error) {
	o := &ShieldedOracle{SM: sm}
	// Discover the adjoint shape with a probe pass on a zero sample.
	shape := append([]int{1}, sm.InputShape()...)
	res, err := sm.Query(tensor.New(shape...), core.CrossEntropyLoss([]int{0}))
	if err != nil {
		return nil, fmt.Errorf("attack: probing adjoint shape: %w", err)
	}
	if res.Adjoint == nil {
		return nil, fmt.Errorf("attack: shielded model returned no adjoint")
	}
	up, err := NewUpsampler(res.Adjoint.Shape(), sm.InputShape(), seed)
	if err != nil {
		return nil, fmt.Errorf("attack: building upsampler for %s: %w", sm.Name(), err)
	}
	o.up = up
	o.adjShape = append([]int(nil), res.Adjoint.Shape()...)
	return o, nil
}

// Reseed redraws the random-uniform upsampling kernel from seed — a fresh
// attacker prior on the shielded layers — without re-probing the defender.
// It lets a long-lived oracle (e.g. one reused across federation rounds by
// a compromised client) start every attempt blind, as a newly built oracle
// would, while keeping the shielded model and its pooled arena warm.
func (o *ShieldedOracle) Reseed(seed int64) error {
	up, err := NewUpsampler(o.adjShape, o.SM.InputShape(), seed)
	if err != nil {
		return fmt.Errorf("attack: reseeding upsampler for %s: %w", o.SM.Name(), err)
	}
	o.up = up
	return nil
}

// Name implements Oracle.
func (o *ShieldedOracle) Name() string { return o.SM.Name() + "+Pelta" }

// InputShape implements Oracle.
func (o *ShieldedOracle) InputShape() []int { return o.SM.InputShape() }

// Classes implements Oracle.
func (o *ShieldedOracle) Classes() int { return o.SM.Classes() }

// Logits implements Oracle.
func (o *ShieldedOracle) Logits(x *tensor.Tensor) (*tensor.Tensor, error) {
	res, err := o.SM.Query(x, nil)
	if err != nil {
		return nil, err
	}
	return res.Logits, nil
}

// GradCE implements Oracle: the true shallow backward is masked, so the
// surrogate gradient is the transposed-convolution upsampling of δ_{L+1}.
// The per-sample losses come from the clear logits, which the attacker can
// always read.
func (o *ShieldedOracle) GradCE(x *tensor.Tensor, y []int) (*tensor.Tensor, []float64, error) {
	res, err := o.SM.Query(x, core.CrossEntropyLoss(y))
	if err != nil {
		return nil, nil, err
	}
	grad, err := o.up.Apply(res.Adjoint)
	if err != nil {
		return nil, nil, err
	}
	return grad, perSampleFromLogits(res.Logits, y), nil
}

// GradCW implements Oracle. The ‖x−x0‖² term involves only the attacker's
// own tensors, so its gradient 2c(x−x0) is exact; the margin term goes
// through the upsampled adjoint.
func (o *ShieldedOracle) GradCW(x *tensor.Tensor, y []int, x0 *tensor.Tensor, kappa, c float32) (*tensor.Tensor, float64, error) {
	margin := func(g *autograd.Graph, logits *autograd.Value) *autograd.Value {
		return g.CWMargin(logits, y, kappa)
	}
	res, err := o.SM.Query(x, margin)
	if err != nil {
		return nil, 0, err
	}
	grad, err := o.up.Apply(res.Adjoint)
	if err != nil {
		return nil, 0, err
	}
	diff := tensor.Sub(x, x0)
	tensor.AddScaledIn(grad, 2*c, diff)
	obj := res.Loss + float64(c)*tensor.Dot(diff, diff)
	return grad, obj, nil
}

// perSampleFromLogits computes each sample's cross-entropy from clear
// logits — always attacker-computable, shielded or not.
func perSampleFromLogits(logits *tensor.Tensor, y []int) []float64 {
	probs := tensor.SoftmaxRows(logits)
	out := make([]float64, len(y))
	for i, yi := range y {
		p := float64(probs.At(i, yi))
		if p < 1e-12 {
			p = 1e-12
		}
		out[i] = -math.Log(p)
	}
	return out
}

// perSampleCE computes each sample's cross-entropy through a forward-only
// oracle query (used by attacks that need losses at points where no
// gradient is wanted, e.g. Square).
func perSampleCE(o Oracle, x *tensor.Tensor, y []int) ([]float64, error) {
	logits, err := o.Logits(x)
	if err != nil {
		return nil, err
	}
	return perSampleFromLogits(logits, y), nil
}

// PredictOracle returns argmax predictions through any oracle.
func PredictOracle(o Oracle, x *tensor.Tensor) ([]int, error) {
	logits, err := o.Logits(x)
	if err != nil {
		return nil, err
	}
	return tensor.ArgmaxRows(logits), nil
}
