// Package attack implements the six white-box evasion attacks of the
// paper's evaluation — FGSM, PGD, MIM, APGD, C&W and SAGA — plus the
// random-uniform baseline, against both clear models (full white-box) and
// Pelta-shielded models (restricted white-box).
//
// Attacks consume a gradient Oracle. The clear oracle returns the true
// ∇xL; the shielded oracle can only observe the adjoint δ_{L+1} of the
// shallowest clear layer and substitutes a BPDA-style transposed-convolution
// upsampling for the masked shallow backward (§IV-C, §V-B).
package attack

import (
	"fmt"

	"pelta/internal/autograd"
	"pelta/internal/core"
	"pelta/internal/models"
	"pelta/internal/tensor"
)

// Oracle answers the gradient queries of an attacker probing its local
// model copy.
type Oracle interface {
	// Name identifies the defender.
	Name() string
	// InputShape returns [C,H,W].
	InputShape() []int
	// Classes returns the label-space size.
	Classes() int
	// Logits runs inference on a batch.
	Logits(x *tensor.Tensor) (*tensor.Tensor, error)
	// GradCE returns the gradient w.r.t. x of the summed cross-entropy
	// loss and the loss value (the objective of FGSM/PGD/MIM/APGD/SAGA).
	GradCE(x *tensor.Tensor, y []int) (*tensor.Tensor, float64, error)
	// GradCW returns the gradient of the summed C&W objective
	// margin_κ(x,y) + c·‖x−x0‖² and its value.
	GradCW(x *tensor.Tensor, y []int, x0 *tensor.Tensor, kappa, c float32) (*tensor.Tensor, float64, error)
}

// ClearOracle exposes a non-shielded model: the plain white-box of §III.
type ClearOracle struct {
	M models.Model
}

var _ Oracle = (*ClearOracle)(nil)

// Name implements Oracle.
func (o *ClearOracle) Name() string { return o.M.Name() }

// InputShape implements Oracle.
func (o *ClearOracle) InputShape() []int { return o.M.InputShape() }

// Classes implements Oracle.
func (o *ClearOracle) Classes() int { return o.M.Classes() }

// Logits implements Oracle.
func (o *ClearOracle) Logits(x *tensor.Tensor) (*tensor.Tensor, error) {
	return models.Logits(o.M, x), nil
}

// GradCE implements Oracle.
func (o *ClearOracle) GradCE(x *tensor.Tensor, y []int) (*tensor.Tensor, float64, error) {
	g := autograd.NewGraph()
	in := g.Input(x, "x")
	_, logits := o.M.Forward(g, in)
	loss, _ := g.CrossEntropy(logits, y, autograd.ReduceSum)
	g.Backward(loss)
	defer clearParamGrads(o.M)
	return in.Grad.Clone(), float64(loss.Data.Data()[0]), nil
}

// GradCW implements Oracle.
func (o *ClearOracle) GradCW(x *tensor.Tensor, y []int, x0 *tensor.Tensor, kappa, c float32) (*tensor.Tensor, float64, error) {
	g := autograd.NewGraph()
	in := g.Input(x, "x")
	_, logits := o.M.Forward(g, in)
	obj := g.Add(g.CWMargin(logits, y, kappa), g.Scale(g.SqDistSum(in, x0), c))
	g.Backward(obj)
	defer clearParamGrads(o.M)
	return in.Grad.Clone(), float64(obj.Data.Data()[0]), nil
}

// clearParamGrads discards gradients an attack pass accumulated into the
// model's persistent parameters: probing must not perturb the defender's
// optimizer state.
func clearParamGrads(m models.Model) {
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
}

// ShieldedOracle exposes a Pelta-shielded model: gradient queries return the
// upsampled adjoint, never ∇xL. This is the restricted white-box the paper
// evaluates in the right-hand columns of Table III.
type ShieldedOracle struct {
	SM *core.ShieldedModel
	up *Upsampler
}

var _ Oracle = (*ShieldedOracle)(nil)

// NewShieldedOracle builds the attacker's view of sm. seed initializes the
// random-uniform upsampling kernel (§V-B: the attacker has no priors on the
// shielded parameters).
func NewShieldedOracle(sm *core.ShieldedModel, seed int64) (*ShieldedOracle, error) {
	o := &ShieldedOracle{SM: sm}
	// Discover the adjoint shape with a probe pass on a zero sample.
	shape := append([]int{1}, sm.InputShape()...)
	res, err := sm.Query(tensor.New(shape...), core.CrossEntropyLoss([]int{0}))
	if err != nil {
		return nil, fmt.Errorf("attack: probing adjoint shape: %w", err)
	}
	if res.Adjoint == nil {
		return nil, fmt.Errorf("attack: shielded model returned no adjoint")
	}
	up, err := NewUpsampler(res.Adjoint.Shape(), sm.InputShape(), seed)
	if err != nil {
		return nil, fmt.Errorf("attack: building upsampler for %s: %w", sm.Name(), err)
	}
	o.up = up
	return o, nil
}

// Name implements Oracle.
func (o *ShieldedOracle) Name() string { return o.SM.Name() + "+Pelta" }

// InputShape implements Oracle.
func (o *ShieldedOracle) InputShape() []int { return o.SM.InputShape() }

// Classes implements Oracle.
func (o *ShieldedOracle) Classes() int { return o.SM.Classes() }

// Logits implements Oracle.
func (o *ShieldedOracle) Logits(x *tensor.Tensor) (*tensor.Tensor, error) {
	res, err := o.SM.Query(x, nil)
	if err != nil {
		return nil, err
	}
	return res.Logits, nil
}

// GradCE implements Oracle: the true shallow backward is masked, so the
// surrogate gradient is the transposed-convolution upsampling of δ_{L+1}.
func (o *ShieldedOracle) GradCE(x *tensor.Tensor, y []int) (*tensor.Tensor, float64, error) {
	res, err := o.SM.Query(x, core.CrossEntropyLoss(y))
	if err != nil {
		return nil, 0, err
	}
	grad, err := o.up.Apply(res.Adjoint)
	if err != nil {
		return nil, 0, err
	}
	return grad, res.Loss, nil
}

// GradCW implements Oracle. The ‖x−x0‖² term involves only the attacker's
// own tensors, so its gradient 2c(x−x0) is exact; the margin term goes
// through the upsampled adjoint.
func (o *ShieldedOracle) GradCW(x *tensor.Tensor, y []int, x0 *tensor.Tensor, kappa, c float32) (*tensor.Tensor, float64, error) {
	margin := func(g *autograd.Graph, logits *autograd.Value) *autograd.Value {
		return g.CWMargin(logits, y, kappa)
	}
	res, err := o.SM.Query(x, margin)
	if err != nil {
		return nil, 0, err
	}
	grad, err := o.up.Apply(res.Adjoint)
	if err != nil {
		return nil, 0, err
	}
	diff := tensor.Sub(x, x0)
	tensor.AddScaledIn(grad, 2*c, diff)
	obj := res.Loss + float64(c)*tensor.Dot(diff, diff)
	return grad, obj, nil
}

// PredictOracle returns argmax predictions through any oracle.
func PredictOracle(o Oracle, x *tensor.Tensor) ([]int, error) {
	logits, err := o.Logits(x)
	if err != nil {
		return nil, err
	}
	return tensor.ArgmaxRows(logits), nil
}
