package attack

import (
	"sync"
	"testing"

	"pelta/internal/core"
	"pelta/internal/dataset"
	"pelta/internal/models"
	"pelta/internal/tensor"
)

// SAGA needs a ViT + CNN pair trained on the same task.
var (
	sagaOnce sync.Once
	sagaViT  *models.ViT
	sagaBiT  *models.BiT
	sagaX    *tensor.Tensor
	sagaY    []int
)

func setupSAGA(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("paper-reproduction SAGA suite skipped in -short mode")
	}
	sagaOnce.Do(func() {
		cfg := dataset.SynthCIFAR10(16, 31)
		cfg.Classes = 5
		cfg.TrainN, cfg.ValN = 250, 100
		train, val := dataset.Generate(cfg)
		rng := tensor.NewRNG(4)
		sagaViT = models.NewViT(models.SmallViT("vit-saga", 5, 16, 4), rng)
		sagaBiT = models.NewBiT(models.SmallBiT("bit-saga", 5, 16), rng)
		tc := models.TrainConfig{Epochs: 6, BatchSize: 32, LR: 2e-3, Seed: 5}
		if _, err := models.Train(sagaViT, train.X, train.Y, tc); err != nil {
			panic(err)
		}
		if _, err := models.Train(sagaBiT, train.X, train.Y, tc); err != nil {
			panic(err)
		}
		// Samples both members classify correctly.
		pv := models.Predict(sagaViT, val.X)
		pb := models.Predict(sagaBiT, val.X)
		var idx []int
		for i := range pv {
			if pv[i] == val.Y[i] && pb[i] == val.Y[i] && len(idx) < 16 {
				idx = append(idx, i)
			}
		}
		sub := val.Subset(idx)
		sagaX, sagaY = sub.X, sub.Y
	})
	if len(sagaY) < 8 {
		t.Fatalf("only %d jointly correct samples", len(sagaY))
	}
}

func accuracyOn(t *testing.T, m models.Model, x *tensor.Tensor, y []int) float64 {
	t.Helper()
	return models.Accuracy(m, x, y)
}

func TestRolloutShapeAndRange(t *testing.T) {
	setupSAGA(t)
	r := &ViTRollout{V: sagaViT}
	phi, err := r.AttentionRollout(sagaX)
	if err != nil {
		t.Fatal(err)
	}
	if !phi.SameShape(sagaX) {
		t.Fatalf("rollout shape %v vs input %v", phi.Shape(), sagaX.Shape())
	}
	lo, hi := phi.Data()[0], phi.Data()[0]
	for _, v := range phi.Data() {
		if v < 0 {
			t.Fatalf("rollout weight %v negative (attention products are non-negative)", v)
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi > 1+1e-5 {
		t.Fatalf("rollout max %v, want normalized ≤ 1", hi)
	}
	if hi-lo < 1e-6 {
		t.Fatal("rollout is constant — attention information lost")
	}
}

func TestSAGABreaksUnshieldedPair(t *testing.T) {
	setupSAGA(t)
	saga := &SAGA{Eps: 0.1, Step: 0.0125, Steps: 20, AlphaK: 0.5}
	vitO := &ClearOracle{M: sagaViT}
	bitO := &ClearOracle{M: sagaBiT}
	xadv, err := saga.Perturb(vitO, &ViTRollout{V: sagaViT}, bitO, sagaX, sagaY)
	if err != nil {
		t.Fatal(err)
	}
	rv := accuracyOn(t, sagaViT, xadv, sagaY)
	rb := accuracyOn(t, sagaBiT, xadv, sagaY)
	// SAGA attacks both members simultaneously; at least one should break
	// hard and both should drop substantially (Table IV "None" column).
	if rv > 0.5 && rb > 0.5 {
		t.Fatalf("SAGA barely worked: ViT %.2f, BiT %.2f robust", rv, rb)
	}
}

func TestSAGAAgainstFullyShieldedPair(t *testing.T) {
	setupSAGA(t)
	smV, err := core.NewShieldedModel(sagaViT, 0)
	if err != nil {
		t.Fatal(err)
	}
	smB, err := core.NewShieldedModel(sagaBiT, 0)
	if err != nil {
		t.Fatal(err)
	}
	vitO, err := NewShieldedOracle(smV, 41)
	if err != nil {
		t.Fatal(err)
	}
	bitO, err := NewShieldedOracle(smB, 42)
	if err != nil {
		t.Fatal(err)
	}
	saga := &SAGA{Eps: 0.1, Step: 0.0125, Steps: 10, AlphaK: 0.5}
	xadv, err := saga.Perturb(vitO, &ViTRollout{V: sagaViT}, bitO, sagaX, sagaY)
	if err != nil {
		t.Fatal(err)
	}
	rv := accuracyOn(t, sagaViT, xadv, sagaY)
	rb := accuracyOn(t, sagaBiT, xadv, sagaY)
	// Both shields up: the "Both" column of Table IV — astuteness stays
	// near clean accuracy.
	if (rv+rb)/2 < 0.6 {
		t.Fatalf("fully shielded ensemble broken: ViT %.2f, BiT %.2f", rv, rb)
	}
}

func TestSAGAAsymmetricShielding(t *testing.T) {
	setupSAGA(t)
	// Shield only the ViT: SAGA's usable signal is the clear BiT gradient,
	// so the BiT member suffers more than the ViT member (Table IV).
	smV, err := core.NewShieldedModel(sagaViT, 0)
	if err != nil {
		t.Fatal(err)
	}
	vitO, err := NewShieldedOracle(smV, 43)
	if err != nil {
		t.Fatal(err)
	}
	bitO := &ClearOracle{M: sagaBiT}
	saga := &SAGA{Eps: 0.1, Step: 0.0125, Steps: 10, AlphaK: 0.5}
	xadv, err := saga.Perturb(vitO, &ViTRollout{V: sagaViT}, bitO, sagaX, sagaY)
	if err != nil {
		t.Fatal(err)
	}
	rv := accuracyOn(t, sagaViT, xadv, sagaY)
	rb := accuracyOn(t, sagaBiT, xadv, sagaY)
	if rb > rv {
		t.Fatalf("shielded-ViT setting: clear BiT (%.2f) should suffer more than shielded ViT (%.2f)", rb, rv)
	}
}
