package attack

import (
	"fmt"

	"pelta/internal/autograd"
	"pelta/internal/core"
	"pelta/internal/models"
	"pelta/internal/nn"
	"pelta/internal/tensor"
)

// SubstituteStemOracle implements the adaptive attacker of §VII(ii) / §IV-C:
// instead of upsampling the adjoint, the attacker trains its own
// differentiable approximation g of the shielded shallow layers (a BPDA
// substitute), using (a) the clear deep weights it can read from its device
// and (b) its own local data, supervised by the shielded model's observable
// logits. Gradient queries then backpropagate through g.
//
// The paper hypothesizes this requires "training resources equivalent to
// that of the FL system" and cites [68] on its limitations; the ablation
// bench quantifies how far a budget-limited substitute gets.
type SubstituteStemOracle struct {
	victim *core.ShieldedModel
	// substitute is a full ViT: a freshly initialized stem grafted onto a
	// copy of the victim's clear blocks.
	substitute *models.ViT
	// sub answers gradient queries through the substitute with a pooled
	// arena reused across the attack's iterations.
	sub *ClearOracle
}

var _ Oracle = (*SubstituteStemOracle)(nil)

// SubstituteBudget bounds the attacker's training effort.
type SubstituteBudget struct {
	Epochs    int
	BatchSize int
	LR        float64
	Seed      int64
}

// DefaultSubstituteBudget is the "limited time and number of passes"
// regime of §IV-C.
func DefaultSubstituteBudget() SubstituteBudget {
	return SubstituteBudget{Epochs: 3, BatchSize: 16, LR: 2e-3, Seed: 1}
}

// NewSubstituteStemOracle distills a substitute stem for a shielded ViT
// from the attacker's local samples x (labels are not needed: the shielded
// model's own logits supervise the stem).
func NewSubstituteStemOracle(victim *core.ShieldedModel, vit *models.ViT, x *tensor.Tensor, budget SubstituteBudget) (*SubstituteStemOracle, error) {
	if x.Dim(0) == 0 {
		return nil, fmt.Errorf("attack: substitute training needs local samples")
	}
	// Build the substitute: new stem parameters, shared clear deep layers.
	// Reading the deep weights is legitimate — they are outside the shield.
	sub := models.NewViT(vit.Cfg, tensor.NewRNG(budget.Seed))
	copyClearLayers(sub, vit)

	o := &SubstituteStemOracle{victim: victim, substitute: sub, sub: NewClearOracle(sub)}
	if err := o.distill(x, budget); err != nil {
		return nil, err
	}
	return o, nil
}

// copyClearLayers copies every non-shielded parameter from src into dst,
// leaving dst's stem (the shielded region) at its random initialization.
func copyClearLayers(dst, src *models.ViT) {
	shielded := make(map[string]bool)
	for _, p := range src.ShieldedParams() {
		shielded[p.Name] = true
	}
	srcParams := src.Params()
	for i, p := range dst.Params() {
		if shielded[srcParams[i].Name] {
			continue
		}
		p.Data.CopyFrom(srcParams[i].Data)
	}
}

// distill trains only the substitute's stem parameters so that the full
// substitute matches the victim's observable logits on the attacker's data.
func (o *SubstituteStemOracle) distill(x *tensor.Tensor, budget SubstituteBudget) error {
	stem := map[string]bool{}
	for _, p := range o.substitute.ShieldedParams() {
		stem[p.Name] = true
	}
	opt := nn.NewAdam(o.substitute.ShieldedParams(), budget.LR)
	rng := tensor.NewRNG(budget.Seed)
	n := x.Dim(0)
	for ep := 0; ep < budget.Epochs; ep++ {
		perm := rng.Perm(n)
		for start := 0; start < n; start += budget.BatchSize {
			end := start + budget.BatchSize
			if end > n {
				end = n
			}
			bx, _, err := models.Batch(x, make([]int, n), perm[start:end])
			if err != nil {
				return fmt.Errorf("attack: batching substitute inputs: %w", err)
			}
			// Teacher signal: the shielded model's logits (observable).
			res, err := o.victim.Query(bx, nil)
			if err != nil {
				return fmt.Errorf("attack: querying teacher: %w", err)
			}
			// Student pass: MSE to the teacher logits, gradients flow
			// only into the stem (the clear layers' grads are discarded).
			g := autograd.NewGraph()
			_, logits := o.substitute.Forward(g, g.Input(bx, "x"))
			loss := g.Mean(func() *autograd.Value {
				diff := g.Sub(logits, g.Const(res.Logits, "teacher"))
				return g.Mul(diff, diff)
			}())
			g.Backward(loss)
			// Zero non-stem grads so Adam only moves the stem.
			for _, p := range o.substitute.Params() {
				if !stem[p.Name] {
					p.ZeroGrad()
				}
			}
			opt.Step()
			for _, p := range o.substitute.Params() {
				p.ZeroGrad()
			}
		}
	}
	return nil
}

// Name implements Oracle.
func (o *SubstituteStemOracle) Name() string { return o.victim.Name() + "+substitute" }

// InputShape implements Oracle.
func (o *SubstituteStemOracle) InputShape() []int { return o.victim.InputShape() }

// Classes implements Oracle.
func (o *SubstituteStemOracle) Classes() int { return o.victim.Classes() }

// Logits implements Oracle: predictions still come from the real (shielded)
// victim — only gradients are approximated.
func (o *SubstituteStemOracle) Logits(x *tensor.Tensor) (*tensor.Tensor, error) {
	res, err := o.victim.Query(x, nil)
	if err != nil {
		return nil, err
	}
	return res.Logits, nil
}

// GradCE implements Oracle through the substitute's backward pass.
func (o *SubstituteStemOracle) GradCE(x *tensor.Tensor, y []int) (*tensor.Tensor, []float64, error) {
	return o.sub.GradCE(x, y)
}

// GradCW implements Oracle through the substitute's backward pass.
func (o *SubstituteStemOracle) GradCW(x *tensor.Tensor, y []int, x0 *tensor.Tensor, kappa, c float32) (*tensor.Tensor, float64, error) {
	return o.sub.GradCW(x, y, x0, kappa, c)
}
