package attack

import (
	"testing"

	"pelta/internal/core"
	"pelta/internal/tensor"
)

func TestSquareBreaksClearModel(t *testing.T) {
	if testing.Short() {
		t.Skip("query-heavy test")
	}
	m, x, y := setup(t)
	o := &ClearOracle{M: m}
	sq := &Square{Eps: 0.1, Queries: 300, Seed: 3}
	xadv, err := sq.Perturb(o, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if ra := robustAccuracy(t, o, xadv, y); ra > 0.5 {
		t.Fatalf("Square robust accuracy %.2f, black-box search should break most samples", ra)
	}
	diff := tensor.Sub(xadv, x)
	if linf := tensor.NormLInf(diff); linf > 0.1+1e-5 {
		t.Fatalf("l∞ = %v exceeds ε", linf)
	}
}

func TestSquareDefeatsPeltaToo(t *testing.T) {
	if testing.Short() {
		t.Skip("query-heavy test")
	}
	// The paper's §II caveat: Pelta offers no protection against
	// score-based black-box attacks. The shielded model's logits are
	// observable, so Square performs identically.
	m, x, y := setup(t)
	sm, err := core.NewShieldedModel(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	shielded, err := NewShieldedOracle(sm, 7)
	if err != nil {
		t.Fatal(err)
	}
	sq := &Square{Eps: 0.1, Queries: 300, Seed: 3}
	xadv, err := sq.Perturb(shielded, x, y)
	if err != nil {
		t.Fatal(err)
	}
	ra := robustAccuracy(t, &ClearOracle{M: m}, xadv, y)
	if ra > 0.5 {
		t.Fatalf("Square vs shielded model robust %.2f — the black-box path needs no gradients and must still work", ra)
	}
}

func TestSquareScheduleShrinks(t *testing.T) {
	a := &Square{Eps: 0.1, Queries: 100, PInit: 0.3}
	early := a.pSchedule(1)
	late := a.pSchedule(90)
	if late >= early {
		t.Fatalf("square size should shrink: early %v late %v", early, late)
	}
}
