package attack

import (
	"fmt"
	"math"

	"pelta/internal/autograd"
	"pelta/internal/models"
	"pelta/internal/tensor"
)

// RolloutProvider computes the self-attention map term of SAGA (Eq. 4):
// the per-layer sum over heads of (0.5·W^(att) + 0.5·I), multiplied across
// the n_l encoder blocks, reduced to per-patch importances via the class
// token row and upsampled to the input geometry. The attention maps live in
// the clear (deep) segment of the network, so the attacker can compute the
// rollout even when the ViT's shallow layers are Pelta-shielded.
type RolloutProvider interface {
	AttentionRollout(x *tensor.Tensor) (*tensor.Tensor, error)
}

// ViTRollout reads attention maps from a ViT defender. It owns a pooled
// graph arena, so repeated rollouts are allocation-free in steady state;
// the returned map is valid until the next AttentionRollout call.
type ViTRollout struct {
	V *models.ViT

	g   *autograd.Graph
	buf *tensor.Tensor
}

var _ RolloutProvider = (*ViTRollout)(nil)

// AttentionRollout implements RolloutProvider, returning [B,C,H,W].
func (r *ViTRollout) AttentionRollout(x *tensor.Tensor) (*tensor.Tensor, error) {
	if r.g == nil {
		r.g = autograd.NewGraphWithPool(tensor.NewPool())
		r.g.SetTrackParamGrads(false)
	}
	r.g.Release()
	r.g.RequestRecorded(autograd.RecordAttention)
	r.V.Forward(r.g, r.g.Input(x, "x"))
	maps := r.V.AttentionMaps(r.g)
	if len(maps) == 0 {
		return nil, fmt.Errorf("attack: ViT recorded no attention maps")
	}
	if r.buf == nil || !r.buf.SameShape(x) {
		r.buf = tensor.New(x.Shape()...)
	}
	if err := RolloutFromMaps(mapData(maps), r.V.Cfg.Heads, r.buf); err != nil {
		return nil, err
	}
	return r.buf, nil
}

// RolloutFromMaps computes the SAGA attention rollout (Eq. 4) from per-block
// attention probabilities (each [B*heads, T, T]) into dst [B,C,H,W]:
// R = ∏_l [ Σ_heads (0.5·W_l + 0.5·I) ], class-token row normalized to max 1
// and nearest-neighbour-upsampled over the patch grid.
func RolloutFromMaps(maps []*tensor.Tensor, heads int, dst *tensor.Tensor) error {
	if len(maps) == 0 {
		return fmt.Errorf("attack: rollout needs at least one attention map")
	}
	b, c, h, w := dst.Dim(0), dst.Dim(1), dst.Dim(2), dst.Dim(3)
	t := maps[0].Dim(1)
	n := t - 1
	grid := int(math.Round(math.Sqrt(float64(n))))
	if grid*grid != n {
		return fmt.Errorf("attack: token count %d is not a square grid + class token", t)
	}
	layer := tensor.New(t, t)
	for i := 0; i < b; i++ {
		// R = ∏_l [ Σ_heads (0.5·W_l + 0.5·I) ]
		r2 := identity(t)
		for _, m := range maps {
			layer.Zero()
			for hd := 0; hd < heads; hd++ {
				att := m.Slice(i*heads + hd) // [T,T]
				for j := 0; j < t*t; j++ {
					layer.Data()[j] += 0.5 * att.Data()[j]
				}
			}
			for j := 0; j < t; j++ {
				layer.Data()[j*t+j] += 0.5 * float32(heads)
			}
			r2 = tensor.MatMul(layer, r2)
		}
		// Class-token row → patch importances, normalized to max 1.
		row := r2.Row(0).Data()[1:]
		mx := float32(0)
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		if mx == 0 {
			mx = 1
		}
		// Nearest-neighbour upsample of the patch grid to H×W.
		dsti := dst.Slice(i)
		ph, pw := h/grid, w/grid
		for y := 0; y < h; y++ {
			py := y / ph
			if py >= grid {
				py = grid - 1
			}
			for xx := 0; xx < w; xx++ {
				px := xx / pw
				if px >= grid {
					px = grid - 1
				}
				v := row[py*grid+px] / mx
				for ch := 0; ch < c; ch++ {
					dsti.Data()[ch*h*w+y*w+xx] = v
				}
			}
		}
	}
	return nil
}

func identity(n int) *tensor.Tensor {
	id := tensor.New(n, n)
	for i := 0; i < n; i++ {
		id.Set(1, i, i)
	}
	return id
}

// SAGA is the Self-Attention Gradient Attack [44] against a ViT+CNN
// ensemble (Eq. 2-4): a sign attack on the blended gradient
// G = α_k·∂L_k/∂x + α_v·ϕ_v ⊙ ∂L_v/∂x with ϕ_v the attention rollout
// modulated by the current image.
type SAGA struct {
	Eps    float32
	Step   float32 // ε_step in Table II
	Steps  int
	AlphaK float32 // CNN weight; the ViT weight is α_v = 1 − α_k
}

// Name returns the attack label.
func (a *SAGA) Name() string { return "SAGA" }

// Perturb runs the attack. vit and cnn answer gradient queries for the two
// ensemble members (either may be shielded); rollout provides ϕ_v. When the
// ViT oracle can serve the rollout from its own gradient pass
// (RolloutGradOracle), the separate rollout forward is skipped entirely.
func (a *SAGA) Perturb(vit Oracle, rollout RolloutProvider, cnn Oracle, x *tensor.Tensor, y []int) (*tensor.Tensor, error) {
	if err := checkBatch(x, y); err != nil {
		return nil, err
	}
	fused, _ := vit.(RolloutGradOracle)
	if fused != nil && !fused.CanRollout() {
		fused = nil
	}
	alphaV := 1 - a.AlphaK
	xadv := x.Clone()
	blend := tensor.New(x.Shape()...)
	phiBuf := tensor.New(x.Shape()...)
	for k := 0; k < a.Steps; k++ {
		gradK, _, err := cnn.GradCE(xadv, y)
		if err != nil {
			return nil, fmt.Errorf("attack: SAGA CNN gradient: %w", err)
		}
		// gradK is only valid until the next cnn query; blending consumes it
		// immediately, so stage it into the blend buffer first.
		tensor.ScaleInto(blend, gradK, a.AlphaK)

		var gradV, phi *tensor.Tensor
		if fused != nil {
			gradV, phi, _, err = fused.GradCERollout(xadv, y)
			if err != nil {
				return nil, fmt.Errorf("attack: SAGA ViT gradient+rollout: %w", err)
			}
		} else {
			gradV, _, err = vit.GradCE(xadv, y)
			if err != nil {
				return nil, fmt.Errorf("attack: SAGA ViT gradient: %w", err)
			}
			phi, err = rollout.AttentionRollout(xadv)
			if err != nil {
				return nil, fmt.Errorf("attack: SAGA rollout: %w", err)
			}
		}
		// ϕ_v = rollout ⊙ x^(i)  (Eq. 4), then G_blend (Eq. 3). phi may be
		// an oracle-owned buffer, so modulate into a private copy.
		tensor.MulInto(phiBuf, phi, xadv)
		pd, gv, bd := phiBuf.Data(), gradV.Data(), blend.Data()
		for i := range bd {
			bd[i] += alphaV * pd[i] * gv[i]
		}
		addSignStep(xadv, blend, a.Step)
		projectLinf(xadv, x, a.Eps)
	}
	return xadv, nil
}

// SelfSAGA adapts the ensemble SAGA attack to the single-defender Attack
// interface: the one oracle serves both ensemble roles (α_k weighs the
// plain CE gradient, α_v the rollout-modulated one). This is the probe a
// compromised federated client runs when its device holds a single ViT —
// the attention-rollout term still reshapes the perturbation even without
// a second ensemble member.
type SelfSAGA struct {
	SAGA
	// Rollout supplies ϕ_v when the oracle cannot serve fused rollouts.
	// A shielded ViT needs it: the attention maps live in the clear deep
	// segment, so the attacker computes the rollout from the model directly
	// while gradient queries go through the restricted oracle.
	Rollout RolloutProvider
}

var _ Attack = (*SelfSAGA)(nil)

// Name returns the attack label.
func (a *SelfSAGA) Name() string { return "SAGA" }

// Perturb implements Attack by running SAGA with o as both members.
func (a *SelfSAGA) Perturb(o Oracle, x *tensor.Tensor, y []int) (*tensor.Tensor, error) {
	if a.Rollout == nil {
		rg, ok := o.(RolloutGradOracle)
		if !ok || !rg.CanRollout() {
			return nil, fmt.Errorf("attack: SelfSAGA on %s needs a RolloutProvider (oracle cannot serve rollouts)", o.Name())
		}
	}
	return a.SAGA.Perturb(o, a.Rollout, o, x, y)
}
