package attack

import (
	"math"

	"pelta/internal/tensor"
)

// CW is the Carlini & Wagner l2 attack [62]: it minimizes
// margin_κ(x', y) + c·‖x'−x0‖² over the tanh-space variable w with
// x' = ½(tanh(w)+1), so the pixel box constraint holds by construction.
// The inner optimizer is Adam, as in the original attack.
type CW struct {
	Confidence float32 // κ (50 in Table II)
	Step       float32 // optimizer learning rate (ε_step in Table II)
	Steps      int
	C          float32 // regularization trade-off constant
}

var _ Attack = (*CW)(nil)

// Name implements Attack.
func (a *CW) Name() string { return "C&W" }

// Perturb implements Attack. For every sample the best successful
// adversarial candidate (smallest objective while misclassified) is
// returned; samples never misclassified return the final iterate.
func (a *CW) Perturb(o Oracle, x *tensor.Tensor, y []int) (*tensor.Tensor, error) {
	if err := checkBatch(x, y); err != nil {
		return nil, err
	}
	c := a.C
	if c == 0 {
		c = 0.1
	}
	n := x.Len()
	b := len(y)

	// w = atanh(2x−1), with pixels pulled slightly inside (0,1).
	w := tensor.New(x.Shape()...)
	for i, v := range x.Data() {
		t := 2*float64(v) - 1
		if t > 0.999999 {
			t = 0.999999
		}
		if t < -0.999999 {
			t = -0.999999
		}
		w.Data()[i] = float32(math.Atanh(t))
	}

	// Adam state over w.
	m := make([]float64, n)
	v2 := make([]float64, n)
	const beta1, beta2, eps = 0.9, 0.999, 1e-8

	xAdv := tensor.New(x.Shape()...)
	best := x.Clone()
	bestObj := make([]float64, b)
	found := make([]bool, b)
	for i := range bestObj {
		bestObj[i] = math.Inf(1)
	}

	toPixels := func() {
		for i, wv := range w.Data() {
			xAdv.Data()[i] = float32(0.5 * (math.Tanh(float64(wv)) + 1))
		}
	}

	for k := 1; k <= a.Steps; k++ {
		toPixels()
		grad, _, err := o.GradCW(xAdv, y, x, a.Confidence, c)
		if err != nil {
			return nil, err
		}
		// Track per-sample success/objective on the current iterate.
		pred, err := PredictOracle(o, xAdv)
		if err != nil {
			return nil, err
		}
		sample := n / b
		for i := range y {
			if pred[i] != y[i] {
				diff := tensor.Sub(xAdv.Slice(i), x.Slice(i))
				obj := tensor.Dot(diff, diff)
				if obj < bestObj[i] {
					bestObj[i] = obj
					found[i] = true
					best.Slice(i).CopyFrom(xAdv.Slice(i))
				}
			}
			_ = sample
		}
		// Chain rule through the tanh reparametrization:
		// dw = dx' · ½(1−tanh²(w)).
		gd, wd := grad.Data(), w.Data()
		for i := range gd {
			t := math.Tanh(float64(wd[i]))
			g := float64(gd[i]) * 0.5 * (1 - t*t)
			m[i] = beta1*m[i] + (1-beta1)*g
			v2[i] = beta2*v2[i] + (1-beta2)*g*g
			mh := m[i] / (1 - math.Pow(beta1, float64(k)))
			vh := v2[i] / (1 - math.Pow(beta2, float64(k)))
			wd[i] -= a.Step * float32(mh/(math.Sqrt(vh)+eps))
		}
	}
	toPixels()
	for i := range y {
		if !found[i] {
			best.Slice(i).CopyFrom(xAdv.Slice(i))
		}
	}
	return best, nil
}
