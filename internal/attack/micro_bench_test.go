package attack

import (
	"testing"

	"pelta/internal/models"
	"pelta/internal/tensor"
)

// BenchmarkGradCEMicro isolates the oracle gradient query on an untrained
// small ViT (weights don't affect cost), so profiles see only the engine.
func BenchmarkGradCEMicro(b *testing.B) {
	m := models.NewViT(models.SmallViT("prof-vit", 6, 16, 4), tensor.NewRNG(1))
	benchGradCE(b, NewClearOracle(m))
}

// BenchmarkGradCEMicroBiT is the convolutional counterpart (weight-
// standardized conv + group norm path).
func BenchmarkGradCEMicroBiT(b *testing.B) {
	m := models.NewBiT(models.SmallBiT("prof-bit", 6, 16), tensor.NewRNG(1))
	benchGradCE(b, NewClearOracle(m))
}

func benchGradCE(b *testing.B, o Oracle) {
	b.Helper()
	x := tensor.NewRNG(2).Uniform(0, 1, 4, 3, 16, 16)
	y := []int{0, 1, 2, 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := o.GradCE(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
