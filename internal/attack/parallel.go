package attack

import (
	"fmt"
	"runtime"
	"sync"

	"pelta/internal/models"
	"pelta/internal/tensor"
)

// ParallelOracle fans the independent samples of a batch out across a
// bounded pool of worker oracles. Per-sample gradients of a summed
// objective are independent (inference-mode networks couple nothing across
// the batch dimension), so chunked answers are bit-identical to the
// full-batch ones while using every core.
//
// Each worker owns a private oracle — its own graph arena, pool and output
// buffers — so no synchronization happens on the hot path. With one worker
// the oracle degenerates to a plain delegate with zero overhead.
type ParallelOracle struct {
	workers []Oracle

	gradBuf    *tensor.Tensor
	logitsBuf  *tensor.Tensor
	rolloutBuf *tensor.Tensor
}

var _ Oracle = (*ParallelOracle)(nil)

// NewParallelOracle builds a batched oracle over `workers` instances
// produced by factory (one per worker; workers < 1 selects GOMAXPROCS).
func NewParallelOracle(workers int, factory func() (Oracle, error)) (*ParallelOracle, error) {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &ParallelOracle{}
	for i := 0; i < workers; i++ {
		o, err := factory()
		if err != nil {
			return nil, fmt.Errorf("attack: building worker oracle %d: %w", i, err)
		}
		p.workers = append(p.workers, o)
	}
	return p, nil
}

// NewParallelClearOracle fans gradient queries for m across `workers`
// pooled clear oracles sharing m's weights (read-only in inference mode).
// workers < 1 selects GOMAXPROCS, so on a single-core host this is exactly
// a pooled ClearOracle.
func NewParallelClearOracle(m models.Model, workers int) *ParallelOracle {
	p, _ := NewParallelOracle(workers, func() (Oracle, error) { return NewClearOracle(m), nil })
	return p
}

// Name implements Oracle.
func (p *ParallelOracle) Name() string { return p.workers[0].Name() }

// InputShape implements Oracle.
func (p *ParallelOracle) InputShape() []int { return p.workers[0].InputShape() }

// Classes implements Oracle.
func (p *ParallelOracle) Classes() int { return p.workers[0].Classes() }

// chunks splits b samples into at most len(p.workers) contiguous ranges.
func (p *ParallelOracle) chunks(b int) [][2]int {
	w := len(p.workers)
	if w > b {
		w = b
	}
	out := make([][2]int, 0, w)
	for i := 0; i < w; i++ {
		lo, hi := i*b/w, (i+1)*b/w
		if hi > lo {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}

// fanOut runs fn(worker, chunkIndex, lo, hi) over the sample chunks and
// returns the first error.
func (p *ParallelOracle) fanOut(b int, fn func(o Oracle, idx, lo, hi int) error) error {
	cs := p.chunks(b)
	if len(cs) == 1 {
		return fn(p.workers[0], 0, 0, b)
	}
	errs := make([]error, len(cs))
	var wg sync.WaitGroup
	for i, c := range cs {
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			errs[i] = fn(p.workers[i], i, lo, hi)
		}(i, c[0], c[1])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Logits implements Oracle.
func (p *ParallelOracle) Logits(x *tensor.Tensor) (*tensor.Tensor, error) {
	b := x.Dim(0)
	if b == 0 {
		return nil, fmt.Errorf("attack: empty batch")
	}
	if len(p.workers) == 1 || b == 1 {
		return p.workers[0].Logits(x)
	}
	out := ensureShape(&p.logitsBuf, b, p.Classes())
	err := p.fanOut(b, func(o Oracle, _, lo, hi int) error {
		l, err := o.Logits(x.SliceRange(lo, hi))
		if err != nil {
			return err
		}
		out.SliceRange(lo, hi).CopyFrom(l)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// GradCE implements Oracle.
func (p *ParallelOracle) GradCE(x *tensor.Tensor, y []int) (*tensor.Tensor, []float64, error) {
	b := len(y)
	if len(p.workers) == 1 || b == 1 {
		return p.workers[0].GradCE(x, y)
	}
	out := ensureShape(&p.gradBuf, x.Shape()...)
	per := make([]float64, b)
	err := p.fanOut(b, func(o Oracle, _, lo, hi int) error {
		g, pw, err := o.GradCE(x.SliceRange(lo, hi), y[lo:hi])
		if err != nil {
			return err
		}
		out.SliceRange(lo, hi).CopyFrom(g)
		copy(per[lo:hi], pw)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return out, per, nil
}

var _ RolloutGradOracle = (*ParallelOracle)(nil)

// CanRollout implements RolloutGradOracle: true when every worker can serve
// fused rollout queries.
func (p *ParallelOracle) CanRollout() bool {
	for _, w := range p.workers {
		r, ok := w.(RolloutGradOracle)
		if !ok || !r.CanRollout() {
			return false
		}
	}
	return true
}

// GradCERollout implements RolloutGradOracle, fanning the fused
// gradient+rollout query across the workers. Rollout rows are per-sample
// independent, so chunked results compose exactly.
func (p *ParallelOracle) GradCERollout(x *tensor.Tensor, y []int) (*tensor.Tensor, *tensor.Tensor, []float64, error) {
	b := len(y)
	if len(p.workers) == 1 || b == 1 {
		return p.workers[0].(RolloutGradOracle).GradCERollout(x, y)
	}
	out := ensureShape(&p.gradBuf, x.Shape()...)
	roll := ensureShape(&p.rolloutBuf, x.Shape()...)
	per := make([]float64, b)
	err := p.fanOut(b, func(o Oracle, _, lo, hi int) error {
		g, r, pw, err := o.(RolloutGradOracle).GradCERollout(x.SliceRange(lo, hi), y[lo:hi])
		if err != nil {
			return err
		}
		out.SliceRange(lo, hi).CopyFrom(g)
		roll.SliceRange(lo, hi).CopyFrom(r)
		copy(per[lo:hi], pw)
		return nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return out, roll, per, nil
}

// GradCW implements Oracle.
func (p *ParallelOracle) GradCW(x *tensor.Tensor, y []int, x0 *tensor.Tensor, kappa, c float32) (*tensor.Tensor, float64, error) {
	b := len(y)
	if len(p.workers) == 1 || b == 1 {
		return p.workers[0].GradCW(x, y, x0, kappa, c)
	}
	out := ensureShape(&p.gradBuf, x.Shape()...)
	objs := make([]float64, len(p.workers))
	err := p.fanOut(b, func(o Oracle, idx, lo, hi int) error {
		g, obj, err := o.GradCW(x.SliceRange(lo, hi), y[lo:hi], x0.SliceRange(lo, hi), kappa, c)
		if err != nil {
			return err
		}
		out.SliceRange(lo, hi).CopyFrom(g)
		objs[idx] = obj
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	total := 0.0
	for _, o := range objs {
		total += o
	}
	return out, total, nil
}

// ensureShape reuses buf when its shape matches, else reallocates.
func ensureShape(buf **tensor.Tensor, shape ...int) *tensor.Tensor {
	if *buf != nil {
		t := *buf
		same := t.Rank() == len(shape)
		for i := 0; same && i < len(shape); i++ {
			same = t.Dim(i) == shape[i]
		}
		if same {
			return t
		}
	}
	*buf = tensor.New(shape...)
	return *buf
}
