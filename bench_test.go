// Benchmarks regenerating every table and figure of the paper's evaluation.
//
//	go test -bench=. -benchmem
//
// Each BenchmarkTableN/BenchmarkFigN prints its table or figure data once
// (the quick configuration; cmd/peltabench runs larger sweeps) and then
// times the experiment's core operation. Set PELTA_BENCH_FULL=1 to include
// all six defenders of Table III instead of the ensemble pair.
package pelta

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pelta/internal/attack"
	"pelta/internal/autograd"
	"pelta/internal/core"
	"pelta/internal/dataset"
	"pelta/internal/eval"
	"pelta/internal/fl"
	"pelta/internal/models"
	"pelta/internal/serve"
	"pelta/internal/tee"
	"pelta/internal/tensor"
)

// benchState lazily trains the shared defender block.
var (
	benchOnce sync.Once
	benchBlk  *eval.Block
	benchErr  error
	benchSet  eval.AttackSet
)

func benchBlock(b *testing.B) *eval.Block {
	b.Helper()
	benchOnce.Do(func() {
		cfg := eval.QuickBlockConfig(dataset.SynthCIFAR10(16, 71))
		cfg.AllDefenders = os.Getenv("PELTA_BENCH_FULL") == "1"
		benchSet = eval.DefaultAttackSet()
		benchSet.Steps = 10
		benchBlk, benchErr = eval.BuildBlock(cfg)
	})
	if benchErr != nil {
		b.Fatalf("building benchmark block: %v", benchErr)
	}
	return benchBlk
}

// BenchmarkTable1EnclaveFootprints regenerates Table I: enclave memory cost
// and shielded portion for the paper-scale models.
func BenchmarkTable1EnclaveFootprints(b *testing.B) {
	fmt.Println("\n=== Table I — enclave memory cost (paper-scale configs, ImageNet dims) ===")
	fmt.Print(eval.RenderTable1(eval.Table1()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := eval.Table1()
		if len(rows) != 4 {
			b.Fatal("table shape")
		}
	}
}

// BenchmarkTable2AttackParameters prints the attack roster and parameters
// actually used (Table II, rescaled for the synthetic datasets).
func BenchmarkTable2AttackParameters(b *testing.B) {
	set := eval.DefaultAttackSet()
	fmt.Println("\n=== Table II — attack parameters (rescaled, see EXPERIMENTS.md) ===")
	fmt.Printf("FGSM  ε=%.3f\n", set.Eps)
	fmt.Printf("PGD   ε=%.3f ε_step=%.4f steps=%d\n", set.Eps, set.EpsStep, set.Steps)
	fmt.Printf("MIM   ε=%.3f ε_step=%.4f µ=1.0\n", set.Eps, set.EpsStep)
	fmt.Printf("APGD  ε=%.3f N_restarts=1 ρ=0.75\n", set.Eps)
	fmt.Printf("C&W   confidence=0 step=0.010 steps=%d\n", set.Steps+10)
	fmt.Printf("SAGA  α_k=0.5 ε_step=%.4f\n", set.EpsStep)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(set.Attacks()) != 5 {
			b.Fatal("roster")
		}
	}
}

// BenchmarkTable3IndividualModels regenerates one dataset block of Table
// III (robust accuracy clear vs shielded per attack) and times a single
// shielded PGD perturbation.
func BenchmarkTable3IndividualModels(b *testing.B) {
	blk := benchBlock(b)
	tbl := eval.Table3{Dataset: blk.Name}
	for _, m := range blk.Defenders {
		row, err := eval.RunTable3Row(m, blk.Val, 16, benchSet)
		if err != nil {
			b.Fatal(err)
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	fmt.Println("\n=== Table III — robust accuracy, non-shielded vs Pelta-shielded ===")
	fmt.Print(tbl.Render())

	x, y, err := eval.SelectCorrect([]models.Model{blk.ViT}, blk.Val, 4)
	if err != nil {
		b.Fatal(err)
	}
	_, shield, _, err := eval.Oracles(blk.ViT, 7)
	if err != nil {
		b.Fatal(err)
	}
	pgd := &attack.PGD{Eps: benchSet.Eps, Step: benchSet.EpsStep, Steps: 5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pgd.Perturb(shield, x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4EnsembleSAGA regenerates one dataset block of Table IV
// (the SAGA grid over the four shield settings) and times one SAGA run.
func BenchmarkTable4EnsembleSAGA(b *testing.B) {
	blk := benchBlock(b)
	tbl, err := eval.RunTable4(blk.ViT, blk.BiT, blk.Val, 16, benchSet)
	if err != nil {
		b.Fatal(err)
	}
	fmt.Println("\n=== Table IV — shielded ensemble vs SAGA ===")
	fmt.Print(tbl.Render())

	x, y, err := eval.SelectCorrect([]models.Model{blk.ViT, blk.BiT}, blk.Val, 4)
	if err != nil {
		b.Fatal(err)
	}
	saga := benchSet.SAGA()
	saga.Steps = 5
	vitO := &attack.ClearOracle{M: blk.ViT}
	bitO := &attack.ClearOracle{M: blk.BiT}
	rollout := &attack.ViTRollout{V: blk.ViT}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := saga.Perturb(vitO, rollout, bitO, x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOracleGradCE times the attack-iteration primitive — one gradient
// query against the clear ViT oracle — and reports allocations so pooling
// regressions are visible.
func BenchmarkOracleGradCE(b *testing.B) {
	blk := benchBlock(b)
	x, y, err := eval.SelectCorrect([]models.Model{blk.ViT}, blk.Val, 4)
	if err != nil {
		b.Fatal(err)
	}
	o := &attack.ClearOracle{M: blk.ViT}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := o.GradCE(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOracleGradCEShielded times one restricted-white-box gradient
// query: a shielded Query plus the upsampled adjoint.
func BenchmarkOracleGradCEShielded(b *testing.B) {
	blk := benchBlock(b)
	x, y, err := eval.SelectCorrect([]models.Model{blk.ViT}, blk.Val, 4)
	if err != nil {
		b.Fatal(err)
	}
	sm, err := core.NewShieldedModel(blk.ViT, 0)
	if err != nil {
		b.Fatal(err)
	}
	o, err := attack.NewShieldedOracle(sm, 11)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := o.GradCE(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAPGDClearOracle times full APGD runs (10 steps, 4 samples)
// against the clear ViT — the iterative-attack wall-clock the pooled engine
// targets.
func BenchmarkAPGDClearOracle(b *testing.B) {
	blk := benchBlock(b)
	x, y, err := eval.SelectCorrect([]models.Model{blk.ViT}, blk.Val, 4)
	if err != nil {
		b.Fatal(err)
	}
	o := &attack.ClearOracle{M: blk.ViT}
	apgd := &attack.APGD{Eps: benchSet.Eps, Steps: 10, Rho: 0.75, Restarts: 1, Seed: 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := apgd.Perturb(o, x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3Trajectories regenerates the Fig. 3 trajectory study.
func BenchmarkFig3Trajectories(b *testing.B) {
	res, err := eval.RunFig3()
	if err != nil {
		b.Fatal(err)
	}
	fmt.Println("\n=== Fig. 3 — attack geometry inside the ε-ball ===")
	fmt.Print(res.Render())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunFig3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4Perturbations regenerates the Fig. 4 SAGA panels.
func BenchmarkFig4Perturbations(b *testing.B) {
	blk := benchBlock(b)
	set := benchSet
	set.Steps = 6
	res, err := eval.RunFig4(blk.ViT, blk.BiT, blk.Val, set)
	if err != nil {
		b.Fatal(err)
	}
	fmt.Println("\n=== Fig. 4 — SAGA sample under four shield settings ===")
	fmt.Print(res.Render())
	x := blk.Val.X.Slice(0).Reshape(1, 3, blk.Val.HW, blk.Val.HW)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The per-panel primitive: one shielded inference.
		sm, err := core.NewShieldedModel(blk.ViT, 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sm.Query(x, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeThroughput measures the serving subsystem end to end: 8
// concurrent clients submitting single samples through the micro-batching
// scheduler, across a {replicas × max-batch} grid, against a sequential
// single-replica Query loop baseline. ns/op is per served request. Replica
// scaling is core-bound (each replica is one worker goroutine); batching
// amortizes the per-pass graph and enclave overhead even on one core.
func BenchmarkServeThroughput(b *testing.B) {
	blk := benchBlock(b)
	hw := blk.Val.HW
	n := blk.Val.Len()
	if n > 32 {
		n = 32
	}
	samples := make([]*tensor.Tensor, n)
	batched := make([]*tensor.Tensor, n)
	for i := range samples {
		samples[i] = blk.Val.X.Slice(i)
		batched[i] = blk.Val.X.Slice(i).Reshape(1, 3, hw, hw)
	}
	// Every replica needs its own model copy over the same trained
	// weights: ShieldedModel is sequential-only.
	weights := fl.Snapshot(blk.ViT)
	cloneModel := func(seed int64) (models.Model, error) {
		m := models.NewViT(blk.ViT.Cfg, tensor.NewRNG(seed))
		if err := fl.Apply(m, weights); err != nil {
			return nil, err
		}
		return m, nil
	}

	b.Run("sequential/replicas=1", func(b *testing.B) {
		m, err := cloneModel(900)
		if err != nil {
			b.Fatal(err)
		}
		sm, err := core.NewShieldedModel(m, 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sm.Query(batched[0], nil); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sm.Query(batched[i%n], nil); err != nil {
				b.Fatal(err)
			}
		}
	})

	for _, rep := range []int{1, 2, 4} {
		for _, mb := range []int{1, 8} {
			b.Run(fmt.Sprintf("replicas=%d/batch=%d", rep, mb), func(b *testing.B) {
				pool, err := serve.NewShieldedPool(rep, 0, func(i int) (models.Model, error) {
					return cloneModel(1000 + int64(i))
				})
				if err != nil {
					b.Fatal(err)
				}
				svc := serve.NewService(pool, serve.Config{
					MaxBatch: mb, MaxDelay: 500 * time.Microsecond, QueueDepth: 256,
				})
				defer svc.Close()
				if _, err := svc.Submit("bench", samples[0], time.Time{}); err != nil {
					b.Fatal(err)
				}
				const clients = 8
				b.ReportAllocs()
				b.ResetTimer()
				var next atomic.Int64
				var wg sync.WaitGroup
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for {
							i := int(next.Add(1)) - 1
							if i >= b.N {
								return
							}
							if _, err := svc.Submit("bench", samples[i%n], time.Time{}); err != nil {
								b.Error(err)
								return
							}
						}
					}()
				}
				wg.Wait()
			})
		}
	}
}

// BenchmarkEnclaveWorldSwitch measures the §VI store/load overhead of the
// simulated TrustZone boundary for a Table-I-sized payload.
func BenchmarkEnclaveWorldSwitch(b *testing.B) {
	payload := tensor.NewRNG(1).Normal(0, 1, 256, 256) // 256 KB
	b.SetBytes(payload.Bytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, tok, err := tee.NewEnclave("bench", 0)
		if err != nil {
			b.Fatal(err)
		}
		if err := e.Store("x", payload); err != nil {
			b.Fatal(err)
		}
		if _, err := e.Load(tok, "x"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShieldedVsClearInference quantifies the defender-side cost of
// Pelta at inference time (§VI): a clear forward vs a shielded Query.
func BenchmarkShieldedVsClearInference(b *testing.B) {
	blk := benchBlock(b)
	x := blk.Val.X.Slice(0).Reshape(1, 3, blk.Val.HW, blk.Val.HW)
	b.Run("clear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			models.Logits(blk.ViT, x)
		}
	})
	b.Run("shielded", func(b *testing.B) {
		sm, err := core.NewShieldedModel(blk.ViT, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sm.Query(x, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSection6Overheads regenerates the §VI system-implications
// numbers: world switches, secure-channel traffic and modelled TEE overhead
// per shielded inference for each defender family.
func BenchmarkSection6Overheads(b *testing.B) {
	blk := benchBlock(b)
	var rows []*eval.OverheadReport
	for _, m := range blk.Defenders {
		rep, err := eval.MeasureOverhead(m, 3)
		if err != nil {
			b.Fatal(err)
		}
		rows = append(rows, rep)
	}
	fmt.Println("\n=== §VI — TEE overheads per shielded inference ===")
	fmt.Print(eval.RenderOverhead(rows))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.MeasureOverhead(blk.ViT, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSubstituteVsUpsampling compares the two restricted
// white-box strategies of §IV-C on the same shielded ViT: the blind
// transposed-convolution upsampler vs the distilled substitute stem.
func BenchmarkAblationSubstituteVsUpsampling(b *testing.B) {
	blk := benchBlock(b)
	x, y, err := eval.SelectCorrect([]models.Model{blk.ViT}, blk.Val, 12)
	if err != nil {
		b.Fatal(err)
	}
	sm, err := core.NewShieldedModel(blk.ViT, 0)
	if err != nil {
		b.Fatal(err)
	}
	pgd := &attack.PGD{Eps: benchSet.Eps, Step: benchSet.EpsStep, Steps: 10}

	up, err := attack.NewShieldedOracle(sm, 301)
	if err != nil {
		b.Fatal(err)
	}
	xUp, err := pgd.Perturb(up, x, y)
	if err != nil {
		b.Fatal(err)
	}
	attackerIdx := make([]int, 64)
	for i := range attackerIdx {
		attackerIdx[i] = i
	}
	attackerData := blk.Train.Subset(attackerIdx)
	sub, err := attack.NewSubstituteStemOracle(sm, blk.ViT, attackerData.X, attack.DefaultSubstituteBudget())
	if err != nil {
		b.Fatal(err)
	}
	xSub, err := pgd.Perturb(sub, x, y)
	if err != nil {
		b.Fatal(err)
	}
	fmt.Println("\n=== Ablation — restricted white-box strategies vs shielded ViT ===")
	fmt.Printf("upsampling (one kernel): robust accuracy %.1f%%\n", 100*eval.RobustAccuracy(blk.ViT, xUp, y))
	fmt.Printf("distilled substitute:    robust accuracy %.1f%%\n", 100*eval.RobustAccuracy(blk.ViT, xSub, y))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sub.GradCE(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSAGAAlpha sweeps the attacker's blending weight α_k of
// Eq. 3 (Table II lists two settings) against the unshielded ensemble,
// showing how SAGA trades damage between the CNN and the ViT member.
func BenchmarkAblationSAGAAlpha(b *testing.B) {
	blk := benchBlock(b)
	x, y, err := eval.SelectCorrect([]models.Model{blk.ViT, blk.BiT}, blk.Val, 16)
	if err != nil {
		b.Fatal(err)
	}
	vitO := &attack.ClearOracle{M: blk.ViT}
	bitO := &attack.ClearOracle{M: blk.BiT}
	rollout := &attack.ViTRollout{V: blk.ViT}
	fmt.Println("\n=== Ablation — SAGA α_k sweep (unshielded ensemble) ===")
	for _, alphaK := range []float32{0.1, 0.3, 0.5, 0.7, 0.9} {
		saga := &attack.SAGA{Eps: benchSet.Eps, Step: benchSet.EpsStep, Steps: benchSet.Steps, AlphaK: alphaK}
		xadv, err := saga.Perturb(vitO, rollout, bitO, x, y)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("α_k=%.1f: ViT robust %5.1f%%, BiT robust %5.1f%%\n", alphaK,
			100*eval.RobustAccuracy(blk.ViT, xadv, y),
			100*eval.RobustAccuracy(blk.BiT, xadv, y))
	}
	xs, ys, err := eval.SelectCorrect([]models.Model{blk.ViT, blk.BiT}, blk.Val, 4)
	if err != nil {
		b.Fatal(err)
	}
	saga := &attack.SAGA{Eps: benchSet.Eps, Step: benchSet.EpsStep, Steps: 3, AlphaK: 0.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := saga.Perturb(vitO, rollout, bitO, xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNegativeControlSquare runs the black-box Square attack against
// the shielded ViT — the §II caveat: Pelta does not (and cannot) stop
// score-based black-box attacks.
func BenchmarkNegativeControlSquare(b *testing.B) {
	blk := benchBlock(b)
	x, y, err := eval.SelectCorrect([]models.Model{blk.ViT}, blk.Val, 12)
	if err != nil {
		b.Fatal(err)
	}
	sm, err := core.NewShieldedModel(blk.ViT, 0)
	if err != nil {
		b.Fatal(err)
	}
	shielded, err := attack.NewShieldedOracle(sm, 501)
	if err != nil {
		b.Fatal(err)
	}
	sq := &attack.Square{Eps: benchSet.Eps, Queries: 200, Seed: 5}
	xadv, err := sq.Perturb(shielded, x, y)
	if err != nil {
		b.Fatal(err)
	}
	fmt.Println("\n=== Negative control — black-box Square vs shielded ViT (§II) ===")
	fmt.Printf("Square (200 queries) robust accuracy: %.1f%% — the shield cannot help here\n",
		100*eval.RobustAccuracy(blk.ViT, xadv, y))
	smallSq := &attack.Square{Eps: benchSet.Eps, Queries: 10, Seed: 5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := smallSq.Perturb(shielded, x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationShieldDepth sweeps the Select depth of Algorithm 1 —
// the defender's only knob — reporting enclave bytes per depth (the
// DESIGN.md ablation: deeper shields cost more secure memory).
func BenchmarkAblationShieldDepth(b *testing.B) {
	blk := benchBlock(b)
	x := blk.Val.X.Slice(0).Reshape(1, 3, blk.Val.HW, blk.Val.HW)
	fmt.Println("\n=== Ablation — enclave bytes vs shield depth (ViT) ===")
	for depth := 1; depth <= 4; depth++ {
		g, sel := shieldPass(b, blk.ViT, x, depth)
		e, _, err := tee.NewEnclave("ablate", 0)
		if err != nil {
			b.Fatal(err)
		}
		report, err := core.Protect(g, e, sel, 1)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("depth %d: %3d vertices, %2d params, %s\n",
			depth, report.Vertices, report.Params, eval.FormatBytes(report.Bytes))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, sel := shieldPass(b, blk.ViT, x, 2)
		e, _, err := tee.NewEnclave("ablate", 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.Protect(g, e, sel, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func shieldPass(b *testing.B, m models.Model, x *tensor.Tensor, depth int) (*autograd.Graph, []*autograd.Value) {
	b.Helper()
	g := autograd.NewGraph()
	in := g.Input(x, "x")
	_, logits := m.Forward(g, in)
	loss, _ := g.CrossEntropy(logits, []int{0}, autograd.ReduceSum)
	g.Backward(loss)
	return g, core.SelectDepth(g, depth)
}
